#include "check/trace.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <utility>

#include "harness/report.h"

namespace lifeguard::check {

using harness::json_double;
using harness::json_escape;

bool Trace::has_datagrams() const {
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEventKind::kDatagram) return true;
  }
  return false;
}

bool Trace::has_probe_spans() const {
  for (const TraceEvent& e : events) {
    if (is_probe_span_event(e.kind)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Header derivation & timeline specs

namespace {

std::string us_spec(Duration d) { return std::to_string(d.us) + "us"; }

std::string selector_spec(const fault::VictimSelector& v) {
  switch (v.mode) {
    case fault::VictimSelector::Mode::kUniform:
      return "victims=" + std::to_string(v.count);
    case fault::VictimSelector::Mode::kExplicit: {
      std::string out = "nodes=";
      for (std::size_t i = 0; i < v.indices.size(); ++i) {
        if (i > 0) out += "+";
        out += std::to_string(v.indices[i]);
      }
      return out;
    }
    case fault::VictimSelector::Mode::kFraction:
      return "pct=" + json_double(v.fraction * 100.0);
    case fault::VictimSelector::Mode::kIsland:
      return "island=" + std::to_string(v.count) + "+" +
             std::to_string(v.first);
  }
  return "victims=1";
}

}  // namespace

std::string entry_spec(const fault::TimelineEntry& e) {
  std::string out = std::string(fault_kind_name(e.fault.kind)) + "@" +
                    us_spec(e.at) + ":" + us_spec(e.duration) + "," +
                    selector_spec(e.victims);
  const fault::Fault& f = e.fault;
  switch (f.kind) {
    case fault::FaultKind::kBlock:
    case fault::FaultKind::kPartition:
      break;
    case fault::FaultKind::kIntervalBlock:
    case fault::FaultKind::kFlapping:
      out += ",d=" + us_spec(f.period) + ",i=" + us_spec(f.gap);
      break;
    case fault::FaultKind::kChurn:
      out += ",down=" + us_spec(f.period) + ",up=" + us_spec(f.gap);
      break;
    case fault::FaultKind::kStress:
      out += ",bmin=" + us_spec(f.stress.block_min) +
             ",bmax=" + us_spec(f.stress.block_max) +
             ",rmin=" + us_spec(f.stress.run_min) +
             ",rmax=" + us_spec(f.stress.run_max);
      break;
    case fault::FaultKind::kLinkLoss:
      out += ",egress=" + json_double(f.egress_loss) +
             ",ingress=" + json_double(f.ingress_loss);
      break;
    case fault::FaultKind::kLatency:
      out += ",extra=" + us_spec(f.extra_latency) +
             ",jitter=" + us_spec(f.jitter);
      break;
    case fault::FaultKind::kDuplicate:
      out += ",p=" + json_double(f.probability);
      break;
    case fault::FaultKind::kReorder:
      out += ",p=" + json_double(f.probability) +
             ",spread=" + us_spec(f.spread);
      break;
  }
  return out;
}

std::vector<std::string> timeline_specs(const fault::Timeline& tl) {
  std::vector<std::string> out;
  out.reserve(tl.size());
  for (const fault::TimelineEntry& e : tl.entries()) {
    out.push_back(entry_spec(e));
  }
  return out;
}

std::optional<fault::Timeline> timeline_from_specs(
    const std::vector<std::string>& specs, std::string& error) {
  fault::Timeline tl;
  for (const std::string& spec : specs) {
    std::string entry_error;
    const auto e = fault::parse_timeline_entry(spec, entry_error);
    if (!e) {
      error = "bad timeline spec '" + spec + "': " + entry_error;
      return std::nullopt;
    }
    tl.add(*e);
  }
  return tl;
}

TraceHeader make_header(const harness::Scenario& s) {
  TraceHeader h;
  h.scenario = s.name;
  h.seed = s.seed;
  h.cluster_size = s.cluster_size;
  h.quiesce = s.quiesce;
  h.run_length = s.run_length;
  // The header carries the preset name plus the suspicion tuning — the
  // only config fields the catalog varies. A config that differs from its
  // preset in any *other* field is recorded as "Custom" so replay_file
  // rejects it honestly instead of silently rebuilding the wrong run
  // (replay(Scenario, Trace) still works for such runs).
  h.config_name = s.config.table1_name();
  h.suspicion_alpha = s.config.suspicion_alpha;
  h.suspicion_beta = s.config.suspicion_beta;
  h.suspicion_k = s.config.suspicion_k;
  if (auto preset = swim::Config::from_table1_name(h.config_name)) {
    preset->suspicion_alpha = h.suspicion_alpha;
    preset->suspicion_beta = h.suspicion_beta;
    preset->suspicion_k = h.suspicion_k;
    if (!(*preset == s.config)) h.config_name = "Custom";
  }
  h.network = s.network;
  h.msg_proc_cost = s.msg_proc_cost;
  h.recv_buffer_bytes = s.recv_buffer_bytes;
  h.timeline = timeline_specs(s.effective_timeline());
  h.checks = s.checks;
  h.metrics_interval = s.metrics_interval;
  h.membership = s.membership;
  return h;
}

TraceRecorder::TraceRecorder(const harness::Scenario& s, bool include_datagrams,
                             bool include_probe_spans)
    : include_datagrams_(include_datagrams),
      include_probe_spans_(include_probe_spans) {
  trace_.header = make_header(s);
  trace_.header.probe_spans = include_probe_spans;
}

void TraceRecorder::on_trace_event(const TraceEvent& e) {
  trace_.events.push_back(e);
}

// ---------------------------------------------------------------------------
// Save

namespace {

std::string strings_json(const std::vector<std::string>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + json_escape(v[i]) + "\"";
  }
  out += "]";
  return out;
}

}  // namespace

std::string event_line(const TraceEvent& e) {
  std::string out = "{\"t\":" + std::to_string(e.at.us) + ",\"k\":\"" +
                    trace_event_kind_name(e.kind) + "\"";
  if (e.node >= 0) out += ",\"n\":" + std::to_string(e.node);
  if (e.peer >= 0) out += ",\"m\":" + std::to_string(e.peer);
  if (e.origin >= 0) out += ",\"o\":" + std::to_string(e.origin);
  if (e.incarnation != 0) out += ",\"inc\":" + std::to_string(e.incarnation);
  if (e.originated) out += ",\"og\":1";
  if (e.value != 0.0) out += ",\"v\":" + json_double(e.value);
  out += "}";
  return out;
}

void save_trace(const Trace& t, std::ostream& out) {
  const TraceHeader& h = t.header;
  out << "{\"type\":\"trace\",\"version\":1"
      << ",\"scenario\":\"" << json_escape(h.scenario) << "\""
      << ",\"seed\":\"" << h.seed << "\""
      << ",\"nodes\":" << h.cluster_size
      << ",\"quiesce_us\":" << h.quiesce.us
      << ",\"run_length_us\":" << h.run_length.us
      << ",\"config\":\"" << json_escape(h.config_name) << "\""
      << ",\"alpha\":" << json_double(h.suspicion_alpha)
      << ",\"beta\":" << json_double(h.suspicion_beta)
      << ",\"k\":" << h.suspicion_k
      << ",\"loss\":" << json_double(h.network.udp_loss)
      << ",\"lat_min_us\":" << h.network.latency_min.us
      << ",\"lat_max_us\":" << h.network.latency_max.us
      << ",\"proc_us\":" << h.msg_proc_cost.us
      << ",\"rbuf\":" << h.recv_buffer_bytes
      << ",\"timeline\":" << strings_json(h.timeline)
      << ",\"checked\":" << (h.checks.enabled ? "true" : "false")
      << ",\"invariants\":" << strings_json(h.checks.invariants)
      << ",\"slack\":" << json_double(h.checks.timeout_slack)
      << ",\"settle_us\":" << h.checks.convergence_settle.us
      << ",\"cap_us\":" << h.checks.suspicion_cap.us
      << ",\"max_violations\":" << h.checks.max_violations
      << ",\"metrics_us\":" << h.metrics_interval.us
      << ",\"spans\":" << (h.probe_spans ? "true" : "false");
  // Emitted only for non-default backends: pre-membership traces stay
  // byte-identical (golden-parity) and load with the "swim" default.
  if (h.membership != "swim") {
    out << ",\"membership\":\"" << json_escape(h.membership) << "\"";
  }
  out << "}\n";
  for (const TraceEvent& e : t.events) {
    out << event_line(e) << "\n";
  }
  out << "{\"type\":\"end\",\"events\":" << t.events.size() << "}\n";
}

bool save_trace_file(const Trace& t, const std::string& path,
                     std::string& error) {
  std::ofstream out(path);
  if (!out) {
    error = "cannot open '" + path + "' for writing";
    return false;
  }
  save_trace(t, out);
  out.flush();
  if (!out) {
    error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Load (purpose-built flat-JSON line scanner)

namespace {

struct JsonValue {
  enum class Kind { kString, kNumber, kBool, kArray };
  Kind kind = Kind::kString;
  std::string text;  ///< unescaped string, or the raw number token
  bool boolean = false;
  std::vector<std::string> array;  ///< string elements
};

using JsonObject = std::map<std::string, JsonValue>;

void skip_ws(std::string_view s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
}

bool scan_string(std::string_view s, std::size_t& i, std::string& out,
                 std::string& error) {
  if (i >= s.size() || s[i] != '"') {
    error = "expected '\"'";
    return false;
  }
  ++i;
  out.clear();
  while (i < s.size() && s[i] != '"') {
    char c = s[i++];
    if (c == '\\') {
      if (i >= s.size()) {
        error = "dangling escape";
        return false;
      }
      const char esc = s[i++];
      switch (esc) {
        case '"': c = '"'; break;
        case '\\': c = '\\'; break;
        case '/': c = '/'; break;
        case 'n': c = '\n'; break;
        case 'r': c = '\r'; break;
        case 't': c = '\t'; break;
        case 'u': {
          if (i + 4 > s.size()) {
            error = "truncated \\u escape";
            return false;
          }
          unsigned code = 0;
          for (int d = 0; d < 4; ++d) {
            const char hc = s[i++];
            code <<= 4;
            if (hc >= '0' && hc <= '9') code |= static_cast<unsigned>(hc - '0');
            else if (hc >= 'a' && hc <= 'f') code |= static_cast<unsigned>(hc - 'a' + 10);
            else if (hc >= 'A' && hc <= 'F') code |= static_cast<unsigned>(hc - 'A' + 10);
            else {
              error = "bad \\u escape";
              return false;
            }
          }
          // Traces only escape control characters; anything else is kept
          // as-is only when it fits one byte.
          if (code > 0xFF) {
            error = "unsupported \\u escape above 0xFF";
            return false;
          }
          c = static_cast<char>(code);
          break;
        }
        default:
          error = "unknown escape";
          return false;
      }
    }
    out += c;
  }
  if (i >= s.size()) {
    error = "unterminated string";
    return false;
  }
  ++i;  // closing quote
  return true;
}

bool scan_value(std::string_view s, std::size_t& i, JsonValue& out,
                std::string& error) {
  skip_ws(s, i);
  if (i >= s.size()) {
    error = "expected a value";
    return false;
  }
  if (s[i] == '"') {
    out.kind = JsonValue::Kind::kString;
    return scan_string(s, i, out.text, error);
  }
  if (s[i] == 't' || s[i] == 'f') {
    const bool is_true = s.substr(i, 4) == "true";
    const bool is_false = s.substr(i, 5) == "false";
    if (!is_true && !is_false) {
      error = "bad literal";
      return false;
    }
    out.kind = JsonValue::Kind::kBool;
    out.boolean = is_true;
    i += is_true ? 4 : 5;
    return true;
  }
  if (s[i] == '[') {
    ++i;
    out.kind = JsonValue::Kind::kArray;
    out.array.clear();
    skip_ws(s, i);
    if (i < s.size() && s[i] == ']') {
      ++i;
      return true;
    }
    while (true) {
      std::string element;
      skip_ws(s, i);
      if (!scan_string(s, i, element, error)) return false;
      out.array.push_back(std::move(element));
      skip_ws(s, i);
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      if (i < s.size() && s[i] == ']') {
        ++i;
        return true;
      }
      error = "expected ',' or ']' in array";
      return false;
    }
  }
  // number
  const std::size_t start = i;
  while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) ||
                          s[i] == '-' || s[i] == '+' || s[i] == '.' ||
                          s[i] == 'e' || s[i] == 'E')) {
    ++i;
  }
  if (i == start) {
    error = "expected a value";
    return false;
  }
  out.kind = JsonValue::Kind::kNumber;
  out.text = std::string(s.substr(start, i - start));
  return true;
}

bool parse_flat_object(const std::string& line, JsonObject& out,
                       std::string& error) {
  out.clear();
  std::string_view s = line;
  std::size_t i = 0;
  skip_ws(s, i);
  if (i >= s.size() || s[i] != '{') {
    error = "expected '{'";
    return false;
  }
  ++i;
  skip_ws(s, i);
  if (i < s.size() && s[i] == '}') return true;
  while (true) {
    std::string key;
    skip_ws(s, i);
    if (!scan_string(s, i, key, error)) return false;
    skip_ws(s, i);
    if (i >= s.size() || s[i] != ':') {
      error = "expected ':' after key '" + key + "'";
      return false;
    }
    ++i;
    JsonValue v;
    if (!scan_value(s, i, v, error)) return false;
    out.emplace(std::move(key), std::move(v));
    skip_ws(s, i);
    if (i < s.size() && s[i] == ',') {
      ++i;
      continue;
    }
    if (i < s.size() && s[i] == '}') return true;
    error = "expected ',' or '}'";
    return false;
  }
}

// Typed field accessors; `required` fields set `error` when missing.
const JsonValue* field(const JsonObject& o, const std::string& key) {
  const auto it = o.find(key);
  return it == o.end() ? nullptr : &it->second;
}

bool get_i64(const JsonObject& o, const std::string& key, std::int64_t& out,
             std::string& error, bool required = true) {
  const JsonValue* v = field(o, key);
  if (v == nullptr) {
    if (required) error = "missing field '" + key + "'";
    return !required;
  }
  // Numbers arrive as raw tokens; seeds as strings — accept both.
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->text.c_str(), &end, 10);
  if (end != v->text.c_str() + v->text.size() || errno == ERANGE) {
    error = "field '" + key + "' is not an integer";
    return false;
  }
  out = parsed;
  return true;
}

bool get_u64(const JsonObject& o, const std::string& key, std::uint64_t& out,
             std::string& error) {
  const JsonValue* v = field(o, key);
  if (v == nullptr) {
    error = "missing field '" + key + "'";
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v->text.c_str(), &end, 10);
  if (end != v->text.c_str() + v->text.size() || errno == ERANGE) {
    error = "field '" + key + "' is not an unsigned integer";
    return false;
  }
  out = parsed;
  return true;
}

bool get_dbl(const JsonObject& o, const std::string& key, double& out,
             std::string& error) {
  const JsonValue* v = field(o, key);
  if (v == nullptr) {
    error = "missing field '" + key + "'";
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(v->text.c_str(), &end);
  if (end != v->text.c_str() + v->text.size() || errno == ERANGE) {
    error = "field '" + key + "' is not a number";
    return false;
  }
  out = parsed;
  return true;
}

bool get_str(const JsonObject& o, const std::string& key, std::string& out,
             std::string& error, bool required = true) {
  const JsonValue* v = field(o, key);
  if (v == nullptr) {
    if (!required) return true;  // optional and absent: leave the default
    error = "missing string field '" + key + "'";
    return false;
  }
  if (v->kind != JsonValue::Kind::kString) {
    error = "field '" + key + "' is not a string";
    return false;
  }
  out = v->text;
  return true;
}

bool parse_header(const JsonObject& o, TraceHeader& h, std::string& error) {
  std::int64_t i64 = 0;
  if (!get_str(o, "scenario", h.scenario, error)) return false;
  if (!get_u64(o, "seed", h.seed, error)) return false;
  if (!get_i64(o, "nodes", i64, error)) return false;
  h.cluster_size = static_cast<int>(i64);
  if (!get_i64(o, "quiesce_us", h.quiesce.us, error)) return false;
  if (!get_i64(o, "run_length_us", h.run_length.us, error)) return false;
  if (!get_str(o, "config", h.config_name, error)) return false;
  if (!get_dbl(o, "alpha", h.suspicion_alpha, error)) return false;
  if (!get_dbl(o, "beta", h.suspicion_beta, error)) return false;
  if (!get_i64(o, "k", i64, error)) return false;
  h.suspicion_k = static_cast<int>(i64);
  if (!get_dbl(o, "loss", h.network.udp_loss, error)) return false;
  if (!get_i64(o, "lat_min_us", h.network.latency_min.us, error)) return false;
  if (!get_i64(o, "lat_max_us", h.network.latency_max.us, error)) return false;
  if (!get_i64(o, "proc_us", h.msg_proc_cost.us, error)) return false;
  if (!get_i64(o, "rbuf", i64, error)) return false;
  h.recv_buffer_bytes = static_cast<std::size_t>(i64);
  const JsonValue* tl = field(o, "timeline");
  if (tl == nullptr || tl->kind != JsonValue::Kind::kArray) {
    error = "missing array field 'timeline'";
    return false;
  }
  h.timeline = tl->array;
  const JsonValue* checked = field(o, "checked");
  h.checks.enabled = checked != nullptr && checked->boolean;
  if (const JsonValue* inv = field(o, "invariants");
      inv != nullptr && inv->kind == JsonValue::Kind::kArray) {
    h.checks.invariants = inv->array;
  }
  if (!get_dbl(o, "slack", h.checks.timeout_slack, error)) return false;
  if (!get_i64(o, "settle_us", h.checks.convergence_settle.us, error)) {
    return false;
  }
  if (!get_i64(o, "cap_us", h.checks.suspicion_cap.us, error)) return false;
  if (!get_i64(o, "max_violations", i64, error)) return false;
  h.checks.max_violations = static_cast<std::size_t>(i64);
  // Telemetry fields are optional: pre-telemetry traces omit them.
  if (!get_i64(o, "metrics_us", h.metrics_interval.us, error,
               /*required=*/false)) {
    return false;
  }
  if (const JsonValue* spans = field(o, "spans")) {
    h.probe_spans = spans->boolean;
  }
  // Absent in pre-backend and swim traces; defaults to "swim".
  if (!get_str(o, "membership", h.membership, error, /*required=*/false)) {
    return false;
  }
  return true;
}

bool parse_event(const JsonObject& o, TraceEvent& e, std::string& error) {
  std::string kind_name;
  if (!get_i64(o, "t", e.at.us, error)) return false;
  if (!get_str(o, "k", kind_name, error)) return false;
  const auto kind = trace_event_kind_from_name(kind_name);
  if (!kind) {
    error = "unknown event kind '" + kind_name + "'";
    return false;
  }
  e.kind = *kind;
  std::int64_t i64 = -1;
  if (!get_i64(o, "n", i64, error, /*required=*/false)) return false;
  e.node = static_cast<int>(i64);
  i64 = -1;
  if (!get_i64(o, "m", i64, error, /*required=*/false)) return false;
  e.peer = static_cast<int>(i64);
  i64 = -1;
  if (!get_i64(o, "o", i64, error, /*required=*/false)) return false;
  e.origin = static_cast<int>(i64);
  if (field(o, "inc") != nullptr) {
    if (!get_u64(o, "inc", e.incarnation, error)) return false;
  }
  i64 = 0;
  if (!get_i64(o, "og", i64, error, /*required=*/false)) return false;
  e.originated = i64 != 0;
  if (field(o, "v") != nullptr) {
    if (!get_dbl(o, "v", e.value, error)) return false;
  }
  return true;
}

}  // namespace

std::optional<TraceEvent> event_from_line(std::string_view line,
                                          std::string& error) {
  JsonObject o;
  if (!parse_flat_object(std::string(line), o, error)) return std::nullopt;
  TraceEvent e;
  if (!parse_event(o, e, error)) return std::nullopt;
  return e;
}

std::optional<Trace> load_trace(std::istream& in, std::string& error) {
  Trace t;
  std::string line;
  std::size_t line_no = 0;
  bool have_header = false;
  bool have_footer = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonObject o;
    std::string scan_error;
    if (!parse_flat_object(line, o, scan_error)) {
      error = "line " + std::to_string(line_no) + ": " + scan_error;
      return std::nullopt;
    }
    if (const JsonValue* type = field(o, "type")) {
      if (type->text == "trace") {
        if (have_header) {
          error = "line " + std::to_string(line_no) + ": duplicate header";
          return std::nullopt;
        }
        if (!parse_header(o, t.header, error)) {
          error = "line " + std::to_string(line_no) + ": " + error;
          return std::nullopt;
        }
        have_header = true;
        continue;
      }
      if (type->text == "end") {
        std::int64_t count = 0;
        if (!get_i64(o, "events", count, error)) {
          error = "line " + std::to_string(line_no) + ": " + error;
          return std::nullopt;
        }
        if (count != static_cast<std::int64_t>(t.events.size())) {
          error = "trace is truncated: footer declares " +
                  std::to_string(count) + " events, file has " +
                  std::to_string(t.events.size());
          return std::nullopt;
        }
        have_footer = true;
        continue;
      }
      error = "line " + std::to_string(line_no) + ": unknown record type '" +
              type->text + "'";
      return std::nullopt;
    }
    if (!have_header) {
      error = "line " + std::to_string(line_no) +
              ": event record before the trace header";
      return std::nullopt;
    }
    TraceEvent e;
    if (!parse_event(o, e, error)) {
      error = "line " + std::to_string(line_no) + ": " + error;
      return std::nullopt;
    }
    t.events.push_back(e);
  }
  if (!have_header) {
    error = "not a trace: no header line";
    return std::nullopt;
  }
  if (!have_footer) {
    error = "trace is truncated: no end-of-trace footer";
    return std::nullopt;
  }
  return t;
}

std::optional<Trace> load_trace_file(const std::string& path,
                                     std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  return load_trace(in, error);
}

}  // namespace lifeguard::check
