// Live protocol invariant checking over the merged event stream.
//
// An Invariant observes every TraceEvent as the run executes and may also
// inspect final simulator state in at_end(). The built-in suite encodes the
// SWIM/Lifeguard safety and liveness properties the paper's claims rest on:
//
//   incarnation-monotonic   a reporter's view of a member's incarnation
//                           never decreases except across a dead -> rejoin
//   refute-before-resurrect alive-after-failed requires a strictly higher
//                           incarnation (or an actual process restart)
//   suspicion-bounds        a local suspicion's lifetime stays inside the
//                           [alpha-floor, beta-scaled max] window (§IV-B)
//   legal-transitions       per-reporter member state machine follows the
//                           SWIM transition graph
//   convergence             once faults stop long enough, every running
//                           node's active view equals the live member set
//   retransmit-bound        no gossip update is piggybacked more than
//                           lambda * ceil(log10(n+1)) times (§III-A)
//   no-send-from-crashed    a crashed process routes no datagrams
//   partition-containment   no datagram crosses an active partition
//
// Checker owns a Spec-selected set of invariants, feeds them the stream
// (it is itself a TraceSink — wire it with check::EventTap), tracks the
// shared facts several invariants need (restart times, crash flags, last
// disturbance), and folds violations into a RunReport.
//
// Determinism: invariants only read the stream and the simulator; they draw
// no randomness and mutate nothing, so enabling checks never changes a
// (scenario, seed) run's results.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "check/events.h"
#include "check/spec.h"
#include "swim/config.h"

namespace lifeguard::sim {
class Simulator;
}

namespace lifeguard::check {

class Checker;

/// What an invariant may look at, beyond the event itself.
struct CheckContext {
  Checker* checker = nullptr;  ///< violation sink
  const sim::Simulator* sim = nullptr;  ///< live cluster (null in stream-only use)
  const swim::Config* config = nullptr;
  int cluster_size = 0;
  const Spec* spec = nullptr;
  /// Per-node time of the most recent restart ({-1} when never restarted).
  const std::vector<TimePoint>* last_restart = nullptr;
  /// Per-node crashed-right-now flags (tracked from the stream).
  const std::vector<bool>* crashed = nullptr;
  /// Most recent fault/block/crash/restart activity ({0} when none).
  TimePoint last_disturbance{};
  bool disturbed = false;
  /// Virtual time the run ended at (valid in at_end only).
  TimePoint run_end{};
};

class Invariant {
 public:
  explicit Invariant(std::string name) : name_(std::move(name)) {}
  virtual ~Invariant() = default;

  const std::string& name() const { return name_; }
  /// Called for every stream event (kDatagram included only when
  /// wants_datagrams() is true).
  virtual void on_event(const TraceEvent& e, const CheckContext& ctx) = 0;
  /// Called once after the run completes.
  virtual void at_end(const CheckContext& ctx) { (void)ctx; }
  virtual bool wants_datagrams() const { return false; }

 protected:
  /// Record a violation of this invariant (forwards to the Checker).
  void violate(const CheckContext& ctx, TimePoint at, int node, int member,
               std::string message) const;

 private:
  std::string name_;
};

/// Instantiate the invariants a Spec selects (empty list = full suite).
/// Throws std::invalid_argument on an unknown name — callers that accept
/// user input should run Spec::validate() first.
std::vector<std::unique_ptr<Invariant>> make_invariants(const Spec& spec);

/// Evaluates a set of invariants over the merged stream.
class Checker : public TraceSink {
 public:
  /// `config` / `cluster_size` describe the run under check (bounds and
  /// state-space sizing). The Spec must have passed validate(). `membership`
  /// is the run's backend spec (harness::Scenario::membership): SWIM-specific
  /// invariants (incarnation-monotonic, refute-before-resurrect,
  /// suspicion-bounds, retransmit-bound) are auto-disabled — silently, even
  /// when the Spec names them — for non-swim backends; generic invariants
  /// run everywhere.
  Checker(const Spec& spec, const swim::Config& config, int cluster_size,
          const std::string& membership = "swim");

  /// Attach the live simulator (enables the state-inspecting checks);
  /// optional for pure stream scans.
  void bind(const sim::Simulator* sim) { sim_ = sim; }

  void on_trace_event(const TraceEvent& e) override;
  bool wants_datagrams() const override { return wants_datagrams_; }

  /// Run the end-of-run (liveness) checks; call after the engine's final
  /// run_until. Idempotent per run.
  void finish(TimePoint run_end);

  RunReport report() const;
  const std::vector<Violation>& violations() const { return violations_; }
  std::int64_t total_violations() const { return total_violations_; }

  /// Invariant-facing sink (use Invariant::violate from implementations).
  void add_violation(const std::string& invariant, TimePoint at, int node,
                     int member, std::string message);

 private:
  CheckContext context();

  Spec spec_;
  swim::Config config_;
  int cluster_size_;
  const sim::Simulator* sim_ = nullptr;
  std::vector<std::unique_ptr<Invariant>> invariants_;
  bool wants_datagrams_ = false;

  std::vector<TimePoint> last_restart_;
  std::vector<bool> crashed_;
  TimePoint last_disturbance_{};
  bool disturbed_ = false;
  bool finished_ = false;

  std::int64_t events_seen_ = 0;
  std::int64_t total_violations_ = 0;
  std::vector<Violation> violations_;
};

}  // namespace lifeguard::check
