#include "check/invariant.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "membership/backend.h"
#include "proto/broadcast.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "swim/member.h"
#include "swim/membership.h"
#include "swim/node.h"
#include "swim/suspicion.h"

namespace lifeguard::check {

void Invariant::violate(const CheckContext& ctx, TimePoint at, int node,
                        int member, std::string message) const {
  ctx.checker->add_violation(name_, at, node, member, std::move(message));
}

namespace {

std::string node_name(int index) {
  return index < 0 ? std::string("?") : "node-" + std::to_string(index);
}

std::string fmt_secs(Duration d) {
  std::ostringstream os;
  os << d.seconds() << " s";
  return os.str();
}

/// Per-(reporter, member) state table. Reporter restarts wipe the whole
/// reporter row: a fresh process has a fresh view.
template <typename State>
class PairTable {
 public:
  explicit PairTable(int cluster_size) : n_(cluster_size) {}

  State* find(int reporter, int member) {
    auto it = map_.find(key(reporter, member));
    return it == map_.end() ? nullptr : &it->second;
  }
  State& get(int reporter, int member) { return map_[key(reporter, member)]; }
  void erase(int reporter, int member) { map_.erase(key(reporter, member)); }
  void erase_reporter(int reporter) {
    const std::int64_t lo = key(reporter, 0);
    const std::int64_t hi = key(reporter + 1, 0);
    std::erase_if(map_, [lo, hi](const auto& kv) {
      return kv.first >= lo && kv.first < hi;
    });
  }

 private:
  std::int64_t key(int reporter, int member) const {
    return static_cast<std::int64_t>(reporter) * n_ + member;
  }
  int n_;
  std::unordered_map<std::int64_t, State> map_;
};

// ---------------------------------------------------------------------------
// incarnation-monotonic

/// A reporter's record of a member carries a non-decreasing incarnation —
/// SWIM's precedence rules drop every stale message — except immediately
/// after the reporter saw the member dead (a rejoining process may restart
/// the sequence).
class IncarnationMonotonic final : public Invariant {
 public:
  explicit IncarnationMonotonic(int cluster_size)
      : Invariant("incarnation-monotonic"), seen_(cluster_size) {}

  void on_event(const TraceEvent& e, const CheckContext& ctx) override {
    if (e.kind == TraceEventKind::kRestart) {
      seen_.erase_reporter(e.node);
      return;
    }
    if (!is_member_event(e.kind) || e.node < 0 || e.peer < 0) return;
    if (Last* last = seen_.find(e.node, e.peer)) {
      const bool reset_ok = last->kind == TraceEventKind::kFailed ||
                            last->kind == TraceEventKind::kLeft;
      if (!reset_ok && e.incarnation < last->incarnation) {
        violate(ctx, e.at, e.node, e.peer,
                node_name(e.node) + " applied " +
                    trace_event_kind_name(e.kind) + " about " +
                    node_name(e.peer) + " with incarnation " +
                    std::to_string(e.incarnation) +
                    " after already holding incarnation " +
                    std::to_string(last->incarnation) +
                    " — stale updates must be dropped");
      }
    }
    seen_.get(e.node, e.peer) = {e.incarnation, e.kind};
  }

 private:
  struct Last {
    std::uint64_t incarnation = 0;
    TraceEventKind kind = TraceEventKind::kJoin;
  };
  PairTable<Last> seen_;
};

// ---------------------------------------------------------------------------
// refute-before-resurrect

/// After a reporter declares a member dead, only a strictly
/// higher-incarnation alive (a refutation / new process speaking for
/// itself) — or an actual restart of that member — may bring it back.
class RefuteBeforeResurrect final : public Invariant {
 public:
  explicit RefuteBeforeResurrect(int cluster_size)
      : Invariant("refute-before-resurrect"), dead_(cluster_size) {}

  void on_event(const TraceEvent& e, const CheckContext& ctx) override {
    if (e.kind == TraceEventKind::kRestart) {
      dead_.erase_reporter(e.node);
      return;
    }
    if (!is_member_event(e.kind) || e.node < 0 || e.peer < 0) return;
    switch (e.kind) {
      case TraceEventKind::kFailed:
      case TraceEventKind::kLeft:
        dead_.get(e.node, e.peer) = {e.incarnation, e.at};
        break;
      case TraceEventKind::kAlive:
      case TraceEventKind::kJoin: {
        if (const Death* d = dead_.find(e.node, e.peer)) {
          const TimePoint restarted =
              (*ctx.last_restart)[static_cast<std::size_t>(e.peer)];
          const bool restarted_since =
              restarted.us >= 0 && restarted >= d->at;
          if (!restarted_since && e.incarnation <= d->incarnation) {
            violate(ctx, e.at, e.node, e.peer,
                    node_name(e.node) + " resurrected " + node_name(e.peer) +
                        " at incarnation " + std::to_string(e.incarnation) +
                        " without refutation — it was declared dead at "
                        "incarnation " +
                        std::to_string(d->incarnation) +
                        " and never restarted");
          }
          dead_.erase(e.node, e.peer);
        }
        break;
      }
      default:
        break;
    }
  }

 private:
  struct Death {
    std::uint64_t incarnation = 0;
    TimePoint at{};
  };
  PairTable<Death> dead_;
};

// ---------------------------------------------------------------------------
// suspicion-bounds

/// A locally originated dead declaration ends a suspicion whose lifetime
/// must sit inside the LHA-Suspicion window: never below the alpha floor
/// (alpha * probe_interval — confirmations can drive the timeout to Min but
/// not through it) and never above the beta-scaled Max for the largest
/// possible cluster. Spec::suspicion_cap overrides the upper bound (the
/// planted-violation knob).
class SuspicionBounds final : public Invariant {
 public:
  explicit SuspicionBounds(int cluster_size)
      : Invariant("suspicion-bounds"), open_(cluster_size) {}

  void on_event(const TraceEvent& e, const CheckContext& ctx) override {
    if (e.kind == TraceEventKind::kRestart) {
      open_.erase_reporter(e.node);
      return;
    }
    if (!is_member_event(e.kind) || e.node < 0 || e.peer < 0) return;
    if (e.kind == TraceEventKind::kSuspect) {
      open_.get(e.node, e.peer) = {e.at};
      return;
    }
    if (e.kind == TraceEventKind::kFailed && e.originated &&
        e.node != e.peer) {
      if (const Open* o = open_.find(e.node, e.peer)) {
        check_lifetime(e, e.at - o->since, ctx);
      }
    }
    open_.erase(e.node, e.peer);  // refuted, confirmed dead, or left
  }

 private:
  struct Open {
    TimePoint since{};
  };

  void check_lifetime(const TraceEvent& e, Duration lifetime,
                      const CheckContext& ctx) const {
    const swim::Config& cfg = *ctx.config;
    const double slack = ctx.spec->timeout_slack;
    // Min is clamped below by alpha * probe_interval for any cluster size;
    // Max grows with log10(n), so the cluster_size evaluation bounds every
    // mid-run membership count.
    const Duration floor = cfg.probe_interval.scaled(cfg.suspicion_alpha);
    Duration cap = swim::suspicion_min(cfg.suspicion_alpha, ctx.cluster_size,
                                       cfg.probe_interval);
    if (cfg.lha_suspicion) cap = cap.scaled(cfg.suspicion_beta);
    if (ctx.spec->suspicion_cap > Duration{0}) cap = ctx.spec->suspicion_cap;
    const Duration lo = floor.scaled(1.0 - slack);
    const Duration hi = cap.scaled(1.0 + slack) + msec(1);
    if (lifetime < lo || lifetime > hi) {
      violate(ctx, e.at, e.node, e.peer,
              node_name(e.node) + "'s suspicion of " + node_name(e.peer) +
                  " timed out after " + fmt_secs(lifetime) +
                  ", outside the allowed [" + fmt_secs(lo) + ", " +
                  fmt_secs(hi) + "] window");
    }
  }

  PairTable<Open> open_;
};

// ---------------------------------------------------------------------------
// legal-transitions

/// Per-reporter, per-member events follow the SWIM state machine: members
/// are learned via join; suspect only from an active state; repeated
/// same-state transitions are never re-announced; only dead members rejoin.
class LegalTransitions final : public Invariant {
 public:
  explicit LegalTransitions(int cluster_size)
      : Invariant("legal-transitions"), last_(cluster_size) {}

  void on_event(const TraceEvent& e, const CheckContext& ctx) override {
    if (e.kind == TraceEventKind::kRestart) {
      last_.erase_reporter(e.node);
      return;
    }
    if (!is_member_event(e.kind) || e.node < 0 || e.peer < 0 ||
        e.node == e.peer) {
      return;
    }
    const Prev* prev = last_.find(e.node, e.peer);
    if (!allowed(prev ? std::optional(prev->kind) : std::nullopt, e.kind)) {
      violate(ctx, e.at, e.node, e.peer,
              node_name(e.node) + " reported " +
                  trace_event_kind_name(e.kind) + " about " +
                  node_name(e.peer) +
                  (prev ? std::string(" after ") +
                              trace_event_kind_name(prev->kind)
                        : std::string(" before any join")) +
                  " — not a legal SWIM transition");
    }
    last_.get(e.node, e.peer) = {e.kind};
  }

 private:
  struct Prev {
    TraceEventKind kind = TraceEventKind::kJoin;
  };

  static bool allowed(std::optional<TraceEventKind> prev, TraceEventKind next) {
    if (!prev) return next == TraceEventKind::kJoin;
    switch (*prev) {
      case TraceEventKind::kJoin:
      case TraceEventKind::kAlive:
        return next == TraceEventKind::kSuspect ||
               next == TraceEventKind::kFailed ||
               next == TraceEventKind::kLeft;
      case TraceEventKind::kSuspect:
        return next == TraceEventKind::kAlive ||
               next == TraceEventKind::kFailed ||
               next == TraceEventKind::kLeft;
      case TraceEventKind::kFailed:
      case TraceEventKind::kLeft:
        return next == TraceEventKind::kJoin ||
               next == TraceEventKind::kAlive;
      default:
        return false;
    }
  }

  PairTable<Prev> last_;
};

// ---------------------------------------------------------------------------
// convergence

/// Liveness: when the run's tail after the last disturbance (fault span,
/// block, crash, restart) is at least Spec::convergence_settle long, every
/// running node's active view must equal the set of running nodes. Runs
/// whose faults extend to the end pass vacuously — the protocol was never
/// given time to settle.
class Convergence final : public Invariant {
 public:
  Convergence() : Invariant("convergence") {}

  void on_event(const TraceEvent&, const CheckContext&) override {}

  void at_end(const CheckContext& ctx) override {
    if (ctx.sim == nullptr) return;
    const TimePoint since = ctx.disturbed ? ctx.last_disturbance : TimePoint{};
    if (ctx.run_end - since < ctx.spec->convergence_settle) return;

    const sim::Simulator& sim = *ctx.sim;
    std::set<std::string> expected;
    for (int i = 0; i < sim.size(); ++i) {
      // A backend with no failure detection (static) never prunes a view:
      // every member stays expected, crashed or not.
      if (!sim.detects_failures() ||
          (!sim.is_crashed(i) && sim.agent(i).running())) {
        expected.insert("node-" + std::to_string(i));
      }
    }
    for (int i = 0; i < sim.size(); ++i) {
      if (sim.is_crashed(i) || !sim.agent(i).running()) continue;
      std::set<std::string> view;
      for (std::string& name : sim.agent(i).active_view()) {
        view.insert(std::move(name));
      }
      if (view == expected) continue;
      std::string diff;
      for (const auto& name : expected) {
        if (!view.contains(name)) diff += " missing:" + name;
      }
      for (const auto& name : view) {
        if (!expected.contains(name)) diff += " extra:" + name;
      }
      violate(ctx, ctx.run_end, i, -1,
              node_name(i) + " failed to converge " +
                  fmt_secs(ctx.run_end - since) +
                  " after the last disturbance: its active view has " +
                  std::to_string(view.size()) + " members, expected " +
                  std::to_string(expected.size()) + " —" + diff);
    }
  }
};

// ---------------------------------------------------------------------------
// retransmit-bound

/// SWIM's dissemination component piggybacks each update at most
/// lambda * ceil(log10(n+1)) times; a queue that exceeds the limit for the
/// full cluster size is over-gossiping.
class RetransmitBound final : public Invariant {
 public:
  RetransmitBound() : Invariant("retransmit-bound") {}

  void on_event(const TraceEvent&, const CheckContext&) override {}

  void at_end(const CheckContext& ctx) override {
    if (ctx.sim == nullptr) return;
    const int limit = proto::retransmit_limit(ctx.config->retransmit_mult,
                                              ctx.cluster_size);
    for (int i = 0; i < ctx.sim->size(); ++i) {
      const int seen = ctx.sim->node(i).broadcasts().max_transmits();
      if (seen > limit) {
        violate(ctx, ctx.run_end, i, -1,
                node_name(i) + " piggybacked one update " +
                    std::to_string(seen) + " times; the lambda*log bound "
                    "for a " +
                    std::to_string(ctx.cluster_size) + "-member cluster is " +
                    std::to_string(limit));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// no-send-from-crashed

/// A crashed process is silent: the simulator must route no datagram whose
/// sender is currently crashed.
class NoSendFromCrashed final : public Invariant {
 public:
  NoSendFromCrashed() : Invariant("no-send-from-crashed") {}
  bool wants_datagrams() const override { return true; }

  void on_event(const TraceEvent& e, const CheckContext& ctx) override {
    if (e.kind != TraceEventKind::kDatagram || e.node < 0) return;
    if ((*ctx.crashed)[static_cast<std::size_t>(e.node)]) {
      violate(ctx, e.at, e.node, e.peer,
              node_name(e.node) + " routed a datagram to " +
                  node_name(e.peer) + " while crashed");
    }
  }
};

// ---------------------------------------------------------------------------
// partition-containment

/// While a partition is active, no datagram may be routed between nodes in
/// different partition groups — island views stay contained.
class PartitionContainment final : public Invariant {
 public:
  PartitionContainment() : Invariant("partition-containment") {}
  bool wants_datagrams() const override { return true; }

  void on_event(const TraceEvent& e, const CheckContext& ctx) override {
    if (e.kind != TraceEventKind::kDatagram || ctx.sim == nullptr ||
        e.node < 0 || e.peer < 0) {
      return;
    }
    const sim::Network& net = ctx.sim->network();
    const int from_group = net.partition_group(e.node);
    const int to_group = net.partition_group(e.peer);
    if (from_group != to_group) {
      violate(ctx, e.at, e.node, e.peer,
              "datagram crossed an active partition: " + node_name(e.node) +
                  " (group " + std::to_string(from_group) + ") -> " +
                  node_name(e.peer) + " (group " + std::to_string(to_group) +
                  ")");
    }
  }
};

// ---------------------------------------------------------------------------
// registry

struct Registered {
  const char* name;
  std::unique_ptr<Invariant> (*make)(int cluster_size);
  /// SWIM-protocol-specific (incarnation precedence, suspicion subprotocol,
  /// gossip retransmit bound): auto-disabled for non-swim membership
  /// backends. Generic invariants run everywhere.
  bool swim_only;
};

template <typename T>
std::unique_ptr<Invariant> make_with_size(int cluster_size) {
  return std::make_unique<T>(cluster_size);
}

template <typename T>
std::unique_ptr<Invariant> make_plain(int) {
  return std::make_unique<T>();
}

constexpr Registered kRegistry[] = {
    {"incarnation-monotonic", &make_with_size<IncarnationMonotonic>, true},
    {"refute-before-resurrect", &make_with_size<RefuteBeforeResurrect>, true},
    {"suspicion-bounds", &make_with_size<SuspicionBounds>, true},
    {"legal-transitions", &make_with_size<LegalTransitions>, false},
    {"convergence", &make_plain<Convergence>, false},
    {"retransmit-bound", &make_plain<RetransmitBound>, true},
    {"no-send-from-crashed", &make_plain<NoSendFromCrashed>, false},
    {"partition-containment", &make_plain<PartitionContainment>, false},
};

std::vector<std::unique_ptr<Invariant>> instantiate(
    const Spec& spec, int cluster_size, const std::string& backend_base) {
  // Name validation first (unknown / duplicate), independent of backend
  // applicability: a misspelled invariant is an error even when the backend
  // would have disabled it anyway.
  for (auto it = spec.invariants.begin(); it != spec.invariants.end(); ++it) {
    const bool known =
        std::any_of(std::begin(kRegistry), std::end(kRegistry),
                    [&it](const Registered& r) { return r.name == *it; });
    if (!known) {
      throw std::invalid_argument(
          "unknown invariant '" + *it +
          "' — run check::builtin_invariant_names() for the catalog");
    }
    if (std::find(spec.invariants.begin(), it, *it) != it) {
      throw std::invalid_argument(
          "duplicate invariant names in check::Spec::invariants");
    }
  }
  // Suite order regardless of request order: verdicts and artifacts stay
  // stable under spec reordering. SWIM-specific invariants auto-disable
  // (silently, even when requested by name) for non-swim backends.
  const bool swim = backend_base == "swim";
  std::vector<std::unique_ptr<Invariant>> out;
  for (const Registered& r : kRegistry) {
    if (r.swim_only && !swim) continue;
    if (!spec.invariants.empty() &&
        std::find(spec.invariants.begin(), spec.invariants.end(), r.name) ==
            spec.invariants.end()) {
      continue;
    }
    out.push_back(r.make(cluster_size));
  }
  return out;
}

}  // namespace

const std::vector<std::string>& builtin_invariant_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const Registered& r : kRegistry) out.emplace_back(r.name);
    return out;
  }();
  return names;
}

std::vector<std::unique_ptr<Invariant>> make_invariants(const Spec& spec) {
  // Cluster-size-independent use (stream-only scans): size the tables for
  // the largest supported cluster.
  return instantiate(spec, 4096, "swim");
}

// ---------------------------------------------------------------------------
// Checker

Checker::Checker(const Spec& spec, const swim::Config& config,
                 int cluster_size, const std::string& membership)
    : spec_(spec),
      config_(config),
      cluster_size_(cluster_size),
      invariants_(
          instantiate(spec, cluster_size, membership::base_name(membership))),
      last_restart_(static_cast<std::size_t>(cluster_size), TimePoint{-1}),
      crashed_(static_cast<std::size_t>(cluster_size), false) {
  for (const auto& inv : invariants_) {
    wants_datagrams_ = wants_datagrams_ || inv->wants_datagrams();
  }
}

CheckContext Checker::context() {
  CheckContext ctx;
  ctx.checker = this;
  ctx.sim = sim_;
  ctx.config = &config_;
  ctx.cluster_size = cluster_size_;
  ctx.spec = &spec_;
  ctx.last_restart = &last_restart_;
  ctx.crashed = &crashed_;
  ctx.last_disturbance = last_disturbance_;
  ctx.disturbed = disturbed_;
  return ctx;
}

void Checker::on_trace_event(const TraceEvent& e) {
  ++events_seen_;
  const bool node_in_range =
      e.node >= 0 && e.node < cluster_size_;
  switch (e.kind) {
    case TraceEventKind::kCrash:
      if (node_in_range) crashed_[static_cast<std::size_t>(e.node)] = true;
      break;
    case TraceEventKind::kRestart:
      if (node_in_range) {
        crashed_[static_cast<std::size_t>(e.node)] = false;
        last_restart_[static_cast<std::size_t>(e.node)] = e.at;
      }
      break;
    default:
      break;
  }
  switch (e.kind) {
    case TraceEventKind::kCrash:
    case TraceEventKind::kRestart:
    case TraceEventKind::kBlock:
    case TraceEventKind::kUnblock:
    case TraceEventKind::kFaultStart:
    case TraceEventKind::kFaultEnd:
      last_disturbance_ = std::max(last_disturbance_, e.at);
      disturbed_ = true;
      break;
    default:
      break;
  }
  const CheckContext ctx = context();
  for (const auto& inv : invariants_) {
    if (e.kind == TraceEventKind::kDatagram && !inv->wants_datagrams()) {
      continue;
    }
    inv->on_event(e, ctx);
  }
}

void Checker::finish(TimePoint run_end) {
  if (finished_) return;
  finished_ = true;
  CheckContext ctx = context();
  ctx.run_end = run_end;
  for (const auto& inv : invariants_) inv->at_end(ctx);
}

void Checker::add_violation(const std::string& invariant, TimePoint at,
                            int node, int member, std::string message) {
  ++total_violations_;
  if (violations_.size() < spec_.max_violations) {
    Violation v;
    v.invariant = invariant;
    v.at = at;
    v.node = node;
    v.member = member;
    v.message = std::move(message);
    violations_.push_back(std::move(v));
  }
}

RunReport Checker::report() const {
  RunReport r;
  r.checked = true;
  for (const auto& inv : invariants_) r.invariants.push_back(inv->name());
  r.events_seen = events_seen_;
  r.total_violations = total_violations_;
  r.violations = violations_;
  return r;
}

}  // namespace lifeguard::check
