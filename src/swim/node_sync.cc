// Anti-entropy: push-pull full state sync over the reliable channel
// (memberlist extension, paper §III-B). Also the join path: a joining node
// push-pulls with a seed, and both sides merge.
//
// Merge rule of note: a remote *dead* entry is applied as a *suspicion*
// (memberlist's mergeRemoteState), so a falsely-declared node that receives
// the claim via sync still gets a refutation window instead of being
// instantly killed in the local view.
#include "swim/node.h"

namespace lifeguard::swim {

std::vector<proto::MemberSnapshot> Node::snapshot_state() const {
  std::vector<proto::MemberSnapshot> out;
  const auto all = table_.all();
  out.reserve(all.size());
  for (const Member* m : all) {
    proto::MemberSnapshot s;
    s.name = m->name;
    s.addr = m->addr;
    s.incarnation = m->incarnation;
    s.state = static_cast<std::uint8_t>(m->state);
    out.push_back(std::move(s));
  }
  return out;
}

void Node::handle_push_pull(const proto::PushPull& p) {
  obs_.sync_received().add();
  if (p.is_response) {
    // Only a response to the *join* exchange ends the retry loop. A periodic
    // sync response can come from a peer whose own view is still tiny (e.g.
    // the other member of a churn pair) and proves nothing about having
    // merged a seed's full state.
    if (p.join) {
      join_synced_ = true;
      cancel_timer(join_retry_timer_);
    }
  }
  if (!p.is_response) {
    proto::PushPull resp;
    resp.is_response = true;
    resp.join = p.join;  // echo, so the joiner can tell this answers a join
    resp.from = name_;
    resp.from_addr = addr_;
    resp.members = snapshot_state();
    send_message(p.from_addr, Channel::kReliable, resp, nullptr);
  }
  merge_remote_state(p);
}

void Node::merge_remote_state(const proto::PushPull& p) {
  for (const auto& s : p.members) {
    if (s.name.empty()) continue;
    const auto state = static_cast<MemberState>(s.state);
    switch (state) {
      case MemberState::kAlive:
        on_alive_msg(proto::Alive{s.name, s.incarnation, s.addr});
        break;
      case MemberState::kSuspect:
      case MemberState::kDead:
        // Dead degrades to suspect on merge: gives the subject a refutation
        // window (see file comment). The originator is the LOCAL node, as in
        // memberlist's mergeState — successive syncs with different peers
        // must not masquerade as independent suspicions (that would collapse
        // LHA-Suspicion timeouts spuriously). Unknown members are ignored by
        // the suspect handler, matching memberlist.
        on_suspect_msg(proto::Suspect{s.name, s.incarnation, name_});
        break;
      case MemberState::kLeft:
        on_dead_msg(proto::Dead{s.name, s.incarnation, s.name});
        break;
    }
    if (!running_) return;
  }
}

}  // namespace lifeguard::swim
