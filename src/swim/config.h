// Protocol configuration.
//
// Defaults follow the memberlist values the paper evaluates with
// (BaseProbeInterval = 1 s, BaseProbeTimeout = 500 ms, §IV-A) and memberlist's
// LAN profile for the rest. The three Lifeguard components can be toggled
// independently to reproduce every row of the paper's Table I.
//
// Config is a plain value and the preset factories below are pure (they
// build fresh instances, touching no shared state), so concurrent campaign
// trials can construct and copy configurations freely.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/types.h"

namespace lifeguard::swim {

struct Config {
  // ---- failure detector (SWIM §III-A) ----
  /// Base period between liveness probes of successive round-robin targets.
  Duration probe_interval = sec(1);
  /// Base timeout for the direct-probe ack before indirect probes start.
  Duration probe_timeout = msec(500);
  /// k: number of relays enlisted for an indirect probe.
  int indirect_checks = 3;
  /// memberlist extension: attempt a reliable-channel direct probe in
  /// parallel with the indirect probes.
  bool reliable_fallback_probe = true;

  // ---- dissemination (SWIM §III-A, memberlist extensions) ----
  /// λ: gossip retransmit multiplier (limit = λ·⌈log10(n+1)⌉).
  int retransmit_mult = 4;
  /// Dedicated gossip tick period (memberlist gossips independently of the
  /// probe schedule).
  Duration gossip_interval = msec(200);
  /// Fan-out of each dedicated gossip tick.
  int gossip_fanout = 3;
  /// Keep gossiping to dead members for this long after their death so they
  /// can learn of it and refute (memberlist GossipToTheDeadTime).
  Duration gossip_to_dead = sec(30);
  /// Maximum UDP payload per packet; piggybacking fills up to this.
  std::size_t max_packet_bytes = 1400;

  // ---- anti-entropy (memberlist) ----
  /// Period of push-pull full state sync over the reliable channel. Zero
  /// disables periodic sync (join still uses push-pull).
  Duration push_pull_interval = sec(30);
  /// Period of reconnect attempts: a push-pull aimed at a random *dead*
  /// member (Serf-style), which is what re-merges fully partitioned
  /// sub-groups once connectivity returns. Zero disables.
  Duration reconnect_interval = sec(10);
  /// A join push-pull that has drawn no sync response within this window is
  /// re-sent to the seeds. Memberlist's Join reports failure and callers
  /// retry; without this a node (re)joining through an unreachable seed
  /// learns quiet members only at the next periodic push-pull — far outside
  /// the paper's convergence windows. Zero disables (fire-and-forget join).
  Duration join_retry_interval = sec(2);

  // ---- suspicion (SWIM Suspicion subprotocol + Lifeguard §IV-B) ----
  /// α: suspicion timeout multiplier. Min = α·log10(n)·probe_interval.
  double suspicion_alpha = 5.0;
  /// β: Max = β·Min. β = 1 gives SWIM's fixed timeout.
  double suspicion_beta = 6.0;
  /// K: independent suspicions that drive the timeout down to Min.
  int suspicion_k = 3;

  // ---- Lifeguard component toggles (paper Table I) ----
  bool lha_probe = true;      ///< Local Health Aware Probe (§IV-A)
  bool lha_suspicion = true;  ///< Local Health Aware Suspicion (§IV-B)
  bool buddy_system = true;   ///< Buddy System (§IV-C)

  /// S: saturation limit of the Local Health Multiplier.
  int lhm_max = 8;
  /// Relays send a nack at this fraction of the origin's probe timeout.
  double nack_fraction = 0.8;
  /// Whether LHA-Probe uses the nack sub-mechanism (ablation knob; the
  /// paper's LHA-Probe always includes it).
  bool nack_enabled = true;

  // ---- housekeeping ----
  /// How long dead members stay in the table (and in push-pull exchanges)
  /// before being reclaimed. Zero keeps them forever.
  Duration dead_reclaim_after = sec(120);

  /// Returns the paper's baseline: plain SWIM with the Suspicion subprotocol
  /// (fixed timeout equivalent to α = 5, β = 1) and no Lifeguard components.
  static Config swim_baseline();

  /// Full Lifeguard with the paper's defaults (α = 5, β = 6, K = 3, S = 8).
  static Config lifeguard();

  /// Named single-component configurations matching Table I rows.
  static Config lha_probe_only();
  static Config lha_suspicion_only();
  static Config buddy_only();

  /// Human-readable name of the Table I row this config corresponds to, or
  /// "Custom" when it matches none. Note: classifies on the component
  /// toggles only — use operator== against the preset to detect hand-tuned
  /// fields.
  std::string table1_name() const;

  /// Inverse of table1_name(): the preset a row name denotes, nullopt for
  /// "Custom" or anything unknown. Single source of the name->preset map
  /// (trace replay and tooling resolve presets through this).
  static std::optional<Config> from_table1_name(std::string_view name);

  /// Field-wise equality (all members are plain values).
  bool operator==(const Config&) const = default;
};

}  // namespace lifeguard::swim
