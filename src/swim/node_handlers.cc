// The membership state machine: suspect / alive / dead precedence rules
// (SWIM §4.2 semantics as implemented by memberlist), suspicion lifecycle
// with LHA-Suspicion's dynamic timeout, and refutation.
#include "swim/node.h"

namespace lifeguard::swim {

void Node::emit(EventType type, const Member& m, const std::string& origin,
                bool originated) {
  MemberEvent e;
  e.at = rt_.now();
  e.type = type;
  e.member = m.name;
  e.reporter = name_;
  e.origin = origin;
  e.incarnation = m.incarnation;
  e.originated = originated;
  events_.publish(e);
}

void Node::on_alive_msg(const proto::Alive& a) {
  if (a.member == name_) {
    // Only we may speak for ourselves with a higher incarnation; competing
    // alive claims about self are dropped (they can only equal ours).
    return;
  }
  Member* m = table_.find(a.member);
  if (m == nullptr) {
    Member nm;
    nm.name = a.member;
    nm.addr = a.addr;
    nm.incarnation = a.incarnation;
    nm.state = MemberState::kAlive;
    nm.state_change = rt_.now();
    const Member& stored = table_.add(std::move(nm), rt_.rng());
    emit(EventType::kJoin, stored, a.member, false);
    broadcast(a.member, a);  // keep disseminating the join
    obs_.join_learned().add();
    return;
  }
  // An alive message refutes suspect/dead only with a strictly higher
  // incarnation (SWIM §4.2); equal-incarnation alive carries no news for an
  // already-alive member either.
  if (a.incarnation <= m->incarnation) return;

  const MemberState prev = m->state;
  m->incarnation = a.incarnation;
  m->addr = a.addr;
  if (prev != MemberState::kAlive) {
    table_.set_state(*m, MemberState::kAlive, rt_.now());
    cancel_suspicion(m->name);
    emit(EventType::kAlive, *m, a.member, false);
    (prev == MemberState::kSuspect ? obs_.refuted() : obs_.resurrected())
        .add();
  }
  broadcast(a.member, a);  // refutation must keep spreading
}

void Node::on_suspect_msg(const proto::Suspect& s) {
  if (s.member == name_) {
    // Someone suspects us: refute with a higher incarnation. Needing to do
    // so is evidence of our own slowness (paper: LHM +1).
    Member* self = table_.find(name_);
    if (self != nullptr && s.incarnation >= incarnation_ && !leaving_) {
      refute(s.incarnation);
    }
    return;
  }
  Member* m = table_.find(s.member);
  if (m == nullptr) return;                    // unknown member
  if (s.incarnation < m->incarnation) return;  // stale
  if (m->state == MemberState::kDead || m->state == MemberState::kLeft) return;

  if (m->state == MemberState::kSuspect) {
    auto it = suspicions_.find(s.member);
    if (it == suspicions_.end()) return;  // shutting down
    Suspicion& susp = it->second;
    if (s.incarnation > m->incarnation) {
      m->incarnation = s.incarnation;
      susp.set_incarnation(s.incarnation);
    }
    // Independent confirmation (LHA-Suspicion §IV-B): an unseen originator
    // shrinks the timeout and is re-gossiped (first K only) so other nodes'
    // timeouts shrink too.
    if (cfg_.lha_suspicion && susp.confirm(s.from)) {
      obs_.suspicion_confirmed().add();
      broadcast(s.member, s);
      arm_suspicion_timer(susp);
    }
    return;
  }

  // Alive -> Suspect transition.
  start_suspicion(*m, s.incarnation, s.from);
}

void Node::start_suspicion(Member& m, std::uint64_t incarnation,
                           const std::string& from) {
  m.incarnation = incarnation;
  table_.set_state(m, MemberState::kSuspect, rt_.now());

  const int n = table_.num_active();
  const Duration min_t =
      suspicion_min(cfg_.suspicion_alpha, n, cfg_.probe_interval);
  // β stretches the starting timeout only under LHA-Suspicion; the SWIM
  // baseline runs a fixed timeout (β treated as 1, K as 0).
  const Duration max_t =
      cfg_.lha_suspicion ? min_t.scaled(cfg_.suspicion_beta) : min_t;
  const int k = cfg_.lha_suspicion ? cfg_.suspicion_k : 0;

  auto [it, inserted] = suspicions_.emplace(
      m.name,
      Suspicion(m.name, incarnation, from, min_t, max_t, k, rt_.now()));
  arm_suspicion_timer(it->second);

  emit(EventType::kSuspect, m, from, from == name_);
  obs_.suspicion_started().add();
  // SWIM: a member that suspects (or adopts a suspicion) gossips it.
  broadcast(m.name, proto::Suspect{m.name, incarnation, from});
}

void Node::arm_suspicion_timer(Suspicion& susp) {
  cancel_timer(susp.timer);
  Duration remaining = susp.remaining_at(rt_.now());
  if (remaining < Duration{0}) remaining = Duration{0};
  const std::string member = susp.member();
  susp.timer =
      rt_.schedule(remaining, [this, member] { on_suspicion_timeout(member); });
}

void Node::on_suspicion_timeout(const std::string& member) {
  auto it = suspicions_.find(member);
  if (it == suspicions_.end()) return;
  const std::uint64_t inc = it->second.incarnation();
  obs_.suspicion_confirmations_at_death().record(it->second.confirmations());
  obs_.suspicion_lifetime_s().record(
      (rt_.now() - it->second.start()).seconds());
  if (log_.enabled(LogLevel::kDebug)) {
    std::string msg = "suspicion timeout for " + member + " origins:";
    for (const auto& o : it->second.origins()) msg += " " + o;
    log_.debug(msg);
  }
  suspicions_.erase(it);

  Member* m = table_.find(member);
  if (m == nullptr || m->state != MemberState::kSuspect) return;

  // Failure event: this node originates the dead declaration (this is what
  // the paper's FP / FP- metrics count when `member` is in fact healthy).
  table_.set_state(*m, MemberState::kDead, rt_.now());
  emit(EventType::kFailed, *m, name_, true);
  obs_.dead_declared().add();
  broadcast(member, proto::Dead{member, inc, name_});
}

void Node::cancel_suspicion(const std::string& member) {
  auto it = suspicions_.find(member);
  if (it == suspicions_.end()) return;
  cancel_timer(it->second.timer);
  suspicions_.erase(it);
}

void Node::on_dead_msg(const proto::Dead& d) {
  if (d.member == name_) {
    // We are reported dead. Unless we are deliberately leaving, refute.
    if (!leaving_ && d.incarnation >= incarnation_) {
      refute(d.incarnation);
      obs_.refuted_death().add();
    }
    return;
  }
  Member* m = table_.find(d.member);
  if (m == nullptr) return;
  if (d.incarnation < m->incarnation) return;  // stale
  if (m->state == MemberState::kDead || m->state == MemberState::kLeft) return;

  cancel_suspicion(d.member);
  m->incarnation = d.incarnation;
  const bool left = d.from == d.member;  // graceful leave
  table_.set_state(*m, left ? MemberState::kLeft : MemberState::kDead,
                   rt_.now());
  emit(left ? EventType::kLeft : EventType::kFailed, *m, d.from, false);
  (left ? obs_.left_learned() : obs_.dead_learned()).add();
  broadcast(d.member, d);
}

void Node::refute(std::uint64_t suspected_incarnation) {
  // Planted defect (swim:plant=drop-refute): silently drop the refutation.
  // Without the incarnation bump and Alive broadcast, the suspicion runs to
  // a death verdict and the dead verdict wins every precedence comparison
  // afterwards — the node stays dead in every other view while it is in
  // fact healthy.
  if (plant_drop_refute_) return;
  incarnation_ = std::max(incarnation_, suspected_incarnation) + 1;
  Member* self = table_.find(name_);
  if (self != nullptr) self->incarnation = incarnation_;
  // Having to refute means we missed (or were late to) pings — evidence of
  // local slowness (paper §IV-A: refute => LHM +1).
  health_.refuted_suspicion();
  obs_.lhm().set(static_cast<double>(health_.score()));
  obs_.refutations().add();
  broadcast(name_, proto::Alive{name_, incarnation_, addr_});
}

std::optional<std::vector<std::uint8_t>> Node::buddy_frame(
    const std::string& target) {
  const Member* m = table_.find(target);
  if (m == nullptr || m->state != MemberState::kSuspect) return std::nullopt;
  const auto it = suspicions_.find(target);
  const std::uint64_t inc =
      it != suspicions_.end() ? it->second.incarnation() : m->incarnation;
  BufWriter w(48);
  proto::encode(proto::Suspect{target, inc, name_}, w);
  obs_.buddy_prioritized().add();
  return std::move(w).take();
}

}  // namespace lifeguard::swim
