// Cluster event reporting.
//
// Every local membership state transition is published on the node's
// EventBus; any number of observers attach with subscribe(), which returns a
// RAII Subscription handle. The harness uses `originated` to distinguish a
// *failure event* (this node's own suspicion timeout declared the member
// dead — what the paper counts as a false positive when the member is
// healthy) from mere dissemination (applying a gossiped dead).
// RecordingListener retains events for post-run analysis.
//
// EventListener remains as a deprecated adapter for one release: a raw
// listener pointer passed to swim::Node is simply subscribed on the bus.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace lifeguard::swim {

enum class EventType : std::uint8_t {
  kJoin = 0,     ///< previously unknown member became alive
  kAlive = 1,    ///< suspicion refuted / member recovered
  kSuspect = 2,  ///< member entered suspect state locally
  kFailed = 3,   ///< member declared dead (failure event)
  kLeft = 4,     ///< graceful leave
};

const char* event_type_name(EventType t);

struct MemberEvent {
  TimePoint at{};
  EventType type = EventType::kJoin;
  std::string member;           ///< who the event is about
  std::string reporter;         ///< node at which the transition happened
  std::string origin;           ///< originator (for suspect/failed gossip)
  std::uint64_t incarnation = 0;
  /// True when this node itself originated the transition (its own probe
  /// failure or suspicion timeout), false when applying received gossip.
  bool originated = false;
};

/// Deprecated single-observer interface; prefer EventBus::subscribe(). Kept
/// for one release so existing listeners keep working unchanged.
class EventListener {
 public:
  virtual ~EventListener() = default;
  virtual void on_event(const MemberEvent& e) = 0;
};

/// Multi-subscriber event fan-out with RAII unsubscription.
///
/// Thread-safety: subscribe/unsubscribe/publish may race across threads (a
/// UDP cluster publishes from several runtime loop threads); callbacks run
/// on the publishing thread, outside the bus lock. A Subscription outliving
/// its bus is safe (it holds only a weak reference) and vice versa.
/// Invocations of one handler are serialized, and reset()/destruction
/// blocks until any in-flight call of *that* handler (on another thread)
/// returns — so once reset() returns the handler will not run again and its
/// captures may be destroyed. A handler resetting its own subscription does
/// not block on itself. Caveat: do not reset subscription A from inside
/// subscription B's handler while another thread may do the reverse — such
/// crossing barriers can deadlock.
class EventBus {
 public:
  using Handler = std::function<void(const MemberEvent&)>;

  /// RAII handle: destroying (or reset()-ing) it detaches the handler.
  /// Move-only; a default-constructed handle is empty.
  class Subscription {
   public:
    Subscription() = default;
    Subscription(Subscription&& o) noexcept { *this = std::move(o); }
    Subscription& operator=(Subscription&& o) noexcept {
      if (this != &o) {
        reset();
        state_ = std::move(o.state_);
        id_ = o.id_;
        o.state_.reset();
      }
      return *this;
    }
    ~Subscription() { reset(); }

    Subscription(const Subscription&) = delete;
    Subscription& operator=(const Subscription&) = delete;

    /// Detach now; idempotent.
    void reset();
    /// True while the handler is attached to a live bus.
    bool active() const { return !state_.expired(); }

   private:
    friend class EventBus;
    struct State;
    struct Slot;
    Subscription(std::weak_ptr<State> state, std::uint64_t id)
        : state_(std::move(state)), id_(id) {}
    std::weak_ptr<State> state_;
    std::uint64_t id_ = 0;
  };

  EventBus();

  /// Attach `fn`; it receives every subsequent publish() until the returned
  /// Subscription is destroyed.
  [[nodiscard]] Subscription subscribe(Handler fn);

  /// Deliver `e` to every current subscriber, in subscription order.
  void publish(const MemberEvent& e) const;

  std::size_t subscriber_count() const;

 private:
  std::shared_ptr<Subscription::State> state_;
};

/// Appends every event to a vector (per-node; single-threaded).
class RecordingListener : public EventListener {
 public:
  void on_event(const MemberEvent& e) override { events_.push_back(e); }
  const std::vector<MemberEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  std::vector<MemberEvent> events_;
};

/// Discards events (benches that only read counters).
class NullListener : public EventListener {
 public:
  void on_event(const MemberEvent&) override {}
};

}  // namespace lifeguard::swim
