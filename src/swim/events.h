// Cluster event reporting.
//
// Every local membership state transition is reported through an
// EventListener. The harness uses `originated` to distinguish a *failure
// event* (this node's own suspicion timeout declared the member dead — what
// the paper counts as a false positive when the member is healthy) from mere
// dissemination (applying a gossiped dead). RecordingListener retains events
// for post-run analysis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace lifeguard::swim {

enum class EventType : std::uint8_t {
  kJoin = 0,     ///< previously unknown member became alive
  kAlive = 1,    ///< suspicion refuted / member recovered
  kSuspect = 2,  ///< member entered suspect state locally
  kFailed = 3,   ///< member declared dead (failure event)
  kLeft = 4,     ///< graceful leave
};

const char* event_type_name(EventType t);

struct MemberEvent {
  TimePoint at{};
  EventType type = EventType::kJoin;
  std::string member;           ///< who the event is about
  std::string reporter;         ///< node at which the transition happened
  std::string origin;           ///< originator (for suspect/failed gossip)
  std::uint64_t incarnation = 0;
  /// True when this node itself originated the transition (its own probe
  /// failure or suspicion timeout), false when applying received gossip.
  bool originated = false;
};

class EventListener {
 public:
  virtual ~EventListener() = default;
  virtual void on_event(const MemberEvent& e) = 0;
};

/// Appends every event to a vector (per-node; single-threaded).
class RecordingListener : public EventListener {
 public:
  void on_event(const MemberEvent& e) override { events_.push_back(e); }
  const std::vector<MemberEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  std::vector<MemberEvent> events_;
};

/// Discards events (benches that only read counters).
class NullListener : public EventListener {
 public:
  void on_event(const MemberEvent&) override {}
};

}  // namespace lifeguard::swim
