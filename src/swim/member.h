// Member record and state machine vocabulary.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace lifeguard::swim {

/// SWIM member states. Left is memberlist's graceful-leave refinement of
/// Dead (a dead message whose originator is the member itself).
enum class MemberState : std::uint8_t {
  kAlive = 0,
  kSuspect = 1,
  kDead = 2,
  kLeft = 3,
};

const char* member_state_name(MemberState s);

/// True for states in which the member is still part of the active group
/// (probed, counted in n, used as gossip/relay target).
constexpr bool is_active(MemberState s) {
  return s == MemberState::kAlive || s == MemberState::kSuspect;
}

struct Member {
  std::string name;
  Address addr;
  std::uint64_t incarnation = 0;
  MemberState state = MemberState::kAlive;
  /// When the member entered its current state (local clock).
  TimePoint state_change{};
};

}  // namespace lifeguard::swim
