#include "swim/events.h"

namespace lifeguard::swim {

const char* event_type_name(EventType t) {
  switch (t) {
    case EventType::kJoin:
      return "join";
    case EventType::kAlive:
      return "alive";
    case EventType::kSuspect:
      return "suspect";
    case EventType::kFailed:
      return "failed";
    case EventType::kLeft:
      return "left";
  }
  return "?";
}

}  // namespace lifeguard::swim
