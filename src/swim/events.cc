#include "swim/events.h"

#include <atomic>
#include <thread>

namespace lifeguard::swim {

/// One registered handler. The per-slot mutex serializes invocations and is
/// the barrier reset() takes: locking it after clearing `active` proves no
/// call is in flight and none will start.
struct EventBus::Subscription::Slot {
  std::mutex call_mu;
  std::atomic<bool> active{true};
  /// Thread currently inside the handler (so a self-reset from within the
  /// handler skips the barrier instead of deadlocking on call_mu).
  std::atomic<std::thread::id> running{};
  Handler fn;
};

struct EventBus::Subscription::State {
  mutable std::mutex mu;
  std::vector<std::pair<std::uint64_t, std::shared_ptr<Slot>>> subs;
  std::uint64_t next_id = 1;
};

void EventBus::Subscription::reset() {
  if (auto state = state_.lock()) {
    std::shared_ptr<Slot> slot;
    {
      const std::lock_guard<std::mutex> lock(state->mu);
      for (auto& [id, s] : state->subs) {
        if (id == id_) {
          slot = s;
          break;
        }
      }
      std::erase_if(state->subs,
                    [this](const auto& s) { return s.first == id_; });
    }
    if (slot) {
      slot->active.store(false);
      if (slot->running.load() != std::this_thread::get_id()) {
        // Barrier: wait out an in-flight call on another thread. After this
        // returns the handler cannot run again (publish re-checks `active`
        // under call_mu).
        const std::lock_guard<std::mutex> barrier(slot->call_mu);
      }
    }
  }
  state_.reset();
}

EventBus::EventBus() : state_(std::make_shared<Subscription::State>()) {}

EventBus::Subscription EventBus::subscribe(Handler fn) {
  auto slot = std::make_shared<Subscription::Slot>();
  slot->fn = std::move(fn);
  const std::lock_guard<std::mutex> lock(state_->mu);
  const std::uint64_t id = state_->next_id++;
  state_->subs.emplace_back(id, std::move(slot));
  return Subscription(state_, id);
}

void EventBus::publish(const MemberEvent& e) const {
  // Snapshot the slots under the bus lock, invoke outside it: a handler may
  // subscribe or unsubscribe (even itself) without deadlocking. Fast paths
  // avoid heap traffic for the common 0- and 1-subscriber buses (every
  // membership event on the simulator's hot path lands here twice).
  using Slot = Subscription::Slot;
  auto invoke = [&e](Slot& slot) {
    if (!slot.active.load()) return;
    const std::lock_guard<std::mutex> lock(slot.call_mu);
    if (!slot.active.load()) return;  // reset() won the race
    slot.running.store(std::this_thread::get_id());
    slot.fn(e);
    slot.running.store(std::thread::id{});
  };

  std::shared_ptr<Slot> single;
  std::vector<std::shared_ptr<Slot>> many;
  {
    const std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->subs.empty()) return;
    if (state_->subs.size() == 1) {
      single = state_->subs.front().second;
    } else {
      many.reserve(state_->subs.size());
      for (const auto& [_, slot] : state_->subs) many.push_back(slot);
    }
  }
  if (single) {
    invoke(*single);
  } else {
    for (const auto& slot : many) invoke(*slot);
  }
}

std::size_t EventBus::subscriber_count() const {
  const std::lock_guard<std::mutex> lock(state_->mu);
  return state_->subs.size();
}

const char* event_type_name(EventType t) {
  switch (t) {
    case EventType::kJoin:
      return "join";
    case EventType::kAlive:
      return "alive";
    case EventType::kSuspect:
      return "suspect";
    case EventType::kFailed:
      return "failed";
    case EventType::kLeft:
      return "left";
  }
  return "?";
}

}  // namespace lifeguard::swim
