#include "swim/member.h"

namespace lifeguard::swim {

const char* member_state_name(MemberState s) {
  switch (s) {
    case MemberState::kAlive:
      return "alive";
    case MemberState::kSuspect:
      return "suspect";
    case MemberState::kDead:
      return "dead";
    case MemberState::kLeft:
      return "left";
  }
  return "?";
}

}  // namespace lifeguard::swim
