#include "swim/suspicion.h"

#include <algorithm>
#include <cmath>

namespace lifeguard::swim {

Duration suspicion_timeout(Duration min, Duration max, int k, int c) {
  if (c < 0) c = 0;
  if (k <= 0 || max <= min) return std::max(min, max);
  const double frac =
      std::log(static_cast<double>(c) + 1.0) / std::log(static_cast<double>(k) + 1.0);
  const double span = static_cast<double>((max - min).us);
  const auto reduced = Duration{max.us - static_cast<std::int64_t>(span * frac)};
  return std::max(min, reduced);
}

Duration suspicion_min(double alpha, int n, Duration probe_interval) {
  const double scale =
      std::max(1.0, std::log10(std::max(1.0, static_cast<double>(n))));
  return probe_interval.scaled(alpha * scale);
}

Suspicion::Suspicion(std::string member, std::uint64_t incarnation,
                     std::string first_from, Duration min, Duration max, int k,
                     TimePoint start)
    : member_(std::move(member)),
      incarnation_(incarnation),
      min_(min),
      max_(max),
      k_(k),
      start_(start) {
  seen_from_.insert(std::move(first_from));
}

bool Suspicion::confirm(const std::string& from) {
  if (confirmation_count_ >= k_) return false;
  if (!seen_from_.insert(from).second) return false;
  ++confirmation_count_;
  return true;
}

Duration Suspicion::timeout() const {
  return suspicion_timeout(min_, max_, k_, confirmation_count_);
}

}  // namespace lifeguard::swim
