// ProbeObserver — the probe pipeline's lifecycle hook.
//
// The failure detector's per-period story (direct ping -> ack timeout ->
// indirect ping-req via relays -> nack feedback -> period-end verdict) is
// invisible in the membership event stream until it culminates in a
// suspicion. An observer attached here sees each stage as it happens, which
// is what the telemetry layer's probe-round spans are built from: the
// simulator installs one adapter per node (sim::Simulator::attach_node) and
// republishes the calls as SimEvents for the checking layer's taps.
//
// Observers are pure: they are called on the node's runtime thread, must not
// mutate the node, and must draw no randomness — attaching one never
// perturbs a (scenario, seed) run. All methods default to no-ops so an
// implementation overrides only the stages it cares about.
#pragma once

#include <string>

#include "common/types.h"

namespace lifeguard::swim {

class ProbeObserver {
 public:
  virtual ~ProbeObserver() = default;

  /// A direct probe of `target` began (one per protocol period with a
  /// target available).
  virtual void on_probe_start(const std::string& /*target*/) {}
  /// The probe completed successfully; `rtt` is ping-to-ack round-trip time.
  virtual void on_probe_ack(const std::string& /*target*/, Duration /*rtt*/) {}
  /// The ack timeout expired; the indirect stage (ping-req via relays, plus
  /// the reliable-channel fallback) launched.
  virtual void on_probe_indirect(const std::string& /*target*/) {}
  /// The protocol period ended with no ack: the probe failed and a
  /// suspicion follows.
  virtual void on_probe_fail(const std::string& /*target*/) {}
  /// A relay reported its own timeliness with a nack (Lifeguard §IV-A)
  /// while the probe of `target` was still unresolved.
  virtual void on_probe_nack(const std::string& /*target*/,
                             const std::string& /*relay*/) {}
};

}  // namespace lifeguard::swim
