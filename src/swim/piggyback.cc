#include "swim/piggyback.h"

#include "proto/wire.h"

namespace lifeguard::swim {

std::vector<std::vector<std::uint8_t>> DefaultPiggyback::select(
    std::size_t byte_budget, int n, const std::string* /*ping_target*/) {
  return queue_.get_broadcasts(0, byte_budget, n);
}

std::vector<std::vector<std::uint8_t>> BuddyPiggyback::select(
    std::size_t byte_budget, int n, const std::string* ping_target) {
  std::vector<std::vector<std::uint8_t>> out;
  std::size_t used = 0;
  if (ping_target != nullptr) {
    if (auto frame = priority_frame_(*ping_target)) {
      used = frame->size() + proto::compound_frame_overhead(frame->size());
      if (used <= byte_budget) {
        out.push_back(std::move(*frame));
      } else {
        used = 0;
      }
    }
  }
  auto rest = queue_.get_broadcasts(0, byte_budget - used, n);
  for (auto& f : rest) out.push_back(std::move(f));
  return out;
}

}  // namespace lifeguard::swim
