// Membership table: the local view of the group.
//
// Owns the member records plus the round-robin probe order. SWIM's refinement
// over pure random probing (paper §III-A): targets are taken round-robin from
// a randomly ordered list, new members are inserted at a random position, and
// the list is reshuffled after each full pass. This bounds worst-case
// first-detection latency while preserving the expected-case analysis.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "swim/member.h"

namespace lifeguard::swim {

class MembershipTable {
 public:
  /// `self` is excluded from probe/gossip target selection but stored like
  /// any member (it must appear in push-pull state).
  explicit MembershipTable(std::string self_name);

  // ---- lookup ----
  Member* find(const std::string& name);
  const Member* find(const std::string& name) const;
  bool contains(const std::string& name) const;
  const std::string& self_name() const { return self_; }

  /// Number of known members in active states (alive or suspect), including
  /// self. This is the `n` used for gossip retransmit and suspicion scaling.
  int num_active() const;
  /// All known members (any state), unspecified order.
  std::vector<const Member*> all() const;
  std::size_t size() const { return members_.size(); }

  // ---- mutation ----
  /// Insert a new member. Active members also enter the probe list at a
  /// random position (SWIM's join rule). Returns the stored record.
  Member& add(Member m, Rng& rng);
  /// Update state; maintains the active count. Does not touch probe order
  /// (dead members are skipped lazily at selection time).
  void set_state(Member& m, MemberState s, TimePoint now);
  /// Drop a member entirely (dead-reclaim housekeeping).
  void remove(const std::string& name);

  // ---- probe order ----
  /// Next round-robin probe target: skips self and non-active members;
  /// reshuffles at the end of each pass. Returns nullptr if no eligible
  /// target exists.
  Member* next_probe_target(Rng& rng);

  // ---- random selection ----
  /// Up to `k` distinct members satisfying `pred`, chosen uniformly,
  /// excluding self and any name in `exclude`.
  std::vector<Member*> random_members(
      int k, Rng& rng, const std::vector<std::string>& exclude,
      const std::function<bool(const Member&)>& pred);

  /// Convenience: k random active members.
  std::vector<Member*> random_active(int k, Rng& rng,
                                     const std::vector<std::string>& exclude);

 private:
  std::string self_;
  std::unordered_map<std::string, Member> members_;
  std::vector<std::string> probe_order_;
  std::size_t probe_index_ = 0;
};

}  // namespace lifeguard::swim
