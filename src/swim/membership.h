// Membership table: the local view of the group.
//
// Owns the member records plus the round-robin probe order. SWIM's refinement
// over pure random probing (paper §III-A): targets are taken round-robin from
// a randomly ordered list, new members are inserted at a random position, and
// the list is reshuffled after each full pass. This bounds worst-case
// first-detection latency while preserving the expected-case analysis.
#pragma once

#include <algorithm>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "swim/member.h"

namespace lifeguard::swim {

class MembershipTable {
 public:
  /// `self` is excluded from probe/gossip target selection but stored like
  /// any member (it must appear in push-pull state).
  explicit MembershipTable(std::string self_name);

  // ---- lookup ----
  Member* find(const std::string& name);
  const Member* find(const std::string& name) const;
  bool contains(const std::string& name) const;
  const std::string& self_name() const { return self_; }

  /// Number of known members in active states (alive or suspect), including
  /// self. This is the `n` used for gossip retransmit and suspicion scaling.
  /// O(1): maintained incrementally by add/set_state/remove — the piggyback
  /// path asks on every outbound message, and a per-message O(n) scan was
  /// the simulator's single largest cost at cluster sizes ≥ 512.
  int num_active() const { return active_; }
  /// All known members (any state), unspecified order.
  std::vector<const Member*> all() const;
  std::size_t size() const { return members_.size(); }

  // ---- mutation ----
  /// Insert a new member. Active members also enter the probe list at a
  /// random position (SWIM's join rule). Returns the stored record.
  Member& add(Member m, Rng& rng);
  /// Update state; maintains the active count. Does not touch probe order
  /// (dead members are skipped lazily at selection time).
  void set_state(Member& m, MemberState s, TimePoint now);
  /// Drop a member entirely (dead-reclaim housekeeping).
  void remove(const std::string& name);

  // ---- probe order ----
  /// Next round-robin probe target: skips self and non-active members;
  /// reshuffles at the end of each pass. Returns nullptr if no eligible
  /// target exists.
  Member* next_probe_target(Rng& rng);

  // ---- random selection ----
  /// Up to `k` distinct members satisfying `pred`, chosen uniformly,
  /// excluding self and any name in `exclude`. Templated so hot-path
  /// predicates (called once per member per selection) inline instead of
  /// paying a std::function dispatch; candidate order and Rng draws are
  /// identical for any predicate representation.
  template <typename Pred>
  std::vector<Member*> random_members(int k, Rng& rng,
                                      const std::vector<std::string>& exclude,
                                      const Pred& pred) {
    std::vector<Member*> candidates;
    candidates.reserve(members_.size());
    for (auto& [name, m] : members_) {
      if (name == self_) continue;
      if (std::find(exclude.begin(), exclude.end(), name) != exclude.end())
        continue;
      if (pred(m)) candidates.push_back(&m);
    }
    // Partial Fisher–Yates: uniform k-subset in O(k) swaps.
    std::vector<Member*> out;
    const int want = std::min<int>(k, static_cast<int>(candidates.size()));
    out.reserve(static_cast<std::size_t>(std::max(want, 0)));
    for (int i = 0; i < want; ++i) {
      const auto j =
          static_cast<std::size_t>(i) +
          static_cast<std::size_t>(
              rng.uniform(candidates.size() - static_cast<std::size_t>(i)));
      std::swap(candidates[static_cast<std::size_t>(i)], candidates[j]);
      out.push_back(candidates[static_cast<std::size_t>(i)]);
    }
    return out;
  }

  /// Convenience: k random active members.
  std::vector<Member*> random_active(int k, Rng& rng,
                                     const std::vector<std::string>& exclude);

 private:
  std::string self_;
  std::unordered_map<std::string, Member> members_;
  /// Round-robin order as pointers into `members_` keys (node-stable across
  /// rehash; remove() drops entries before erasing the member). Pointers
  /// keep the random-position join insert an 8-byte memmove per slot — at
  /// big-cluster join-storm rates the string version's O(n) string moves per
  /// add were a measurable quadratic term.
  std::vector<const std::string*> probe_order_;
  std::size_t probe_index_ = 0;
  int active_ = 0;
};

}  // namespace lifeguard::swim
