// Node lifecycle, outbound path and periodic schedules. The probe pipeline
// lives in node_probe.cc, the gossip state machine in node_handlers.cc and
// anti-entropy in node_sync.cc.
#include "swim/node.h"

#include <utility>

namespace lifeguard::swim {

Node::Node(std::string name, Address addr, Config cfg, Runtime& rt,
           EventListener* listener)
    : name_(std::move(name)),
      addr_(addr),
      cfg_(cfg),
      rt_(rt),
      table_(name_),
      bcast_(cfg.retransmit_mult),
      health_(cfg.lhm_max, cfg.lha_probe),
      log_(name_, LogLevel::kOff),
      obs_(metrics_) {
  if (cfg_.buddy_system) {
    piggyback_ = std::make_unique<BuddyPiggyback>(
        bcast_, [this](const std::string& t) { return buddy_frame(t); });
  } else {
    piggyback_ = std::make_unique<DefaultPiggyback>(bcast_);
  }
  if (listener != nullptr) {
    legacy_listener_sub_ =
        events_.subscribe([listener](const MemberEvent& e) {
          listener->on_event(e);
        });
  }
}

Node::~Node() { stop(); }

void Node::start() {
  if (running_) return;
  running_ = true;
  Member self;
  self.name = name_;
  self.addr = addr_;
  self.incarnation = incarnation_;
  self.state = MemberState::kAlive;
  self.state_change = rt_.now();
  table_.add(std::move(self), rt_.rng());
  // Announce ourselves; a lone bootstrap node's broadcast simply expires.
  broadcast(name_, proto::Alive{name_, incarnation_, addr_});
  schedule_ticks();
}

void Node::join(const std::vector<Address>& seeds) {
  join_seeds_.clear();
  for (const Address& seed : seeds) {
    if (seed == addr_) continue;
    join_seeds_.push_back(seed);
  }
  join_synced_ = false;
  send_join_requests();
  // A join through a partition can lose both request and response, and the
  // next periodic push-pull is a full interval away — too late to learn
  // quiet members inside any convergence window (fuzzer-found: a restarted
  // node whose seed was partitioned ended the run blind to a stable member).
  // Memberlist's Join reports failure and callers retry; model that here.
  cancel_timer(join_retry_timer_);
  if (cfg_.join_retry_interval > Duration{0} && !join_seeds_.empty()) {
    join_retry_timer_ =
        rt_.schedule(cfg_.join_retry_interval, [this] { join_retry_tick(); });
  }
}

void Node::send_join_requests() {
  for (const Address& seed : join_seeds_) {
    proto::PushPull req;
    req.is_response = false;
    req.join = true;
    req.from = name_;
    req.from_addr = addr_;
    req.members = snapshot_state();
    send_message(seed, Channel::kReliable, req, nullptr);
  }
}

void Node::join_retry_tick() {
  join_retry_timer_ = kInvalidTimer;
  if (!running_ || join_synced_) return;
  send_join_requests();
  join_retry_timer_ =
      rt_.schedule(cfg_.join_retry_interval, [this] { join_retry_tick(); });
}

void Node::leave() {
  if (leaving_) return;
  leaving_ = true;
  Member* self = table_.find(name_);
  if (self != nullptr) {
    table_.set_state(*self, MemberState::kLeft, rt_.now());
  }
  // from == member encodes the graceful-leave intent (memberlist).
  broadcast(name_, proto::Dead{name_, incarnation_, name_});
  obs_.leaves().add();
}

void Node::stop() {
  if (!running_) return;
  running_ = false;
  cancel_timer(probe_tick_timer_);
  cancel_timer(gossip_tick_timer_);
  cancel_timer(push_pull_timer_);
  cancel_timer(reconnect_timer_);
  cancel_timer(join_retry_timer_);
  cancel_timer(housekeeping_timer_);
  if (probe_) {
    cancel_timer(probe_->timeout_timer);
    cancel_timer(probe_->period_timer);
    probe_.reset();
  }
  for (auto& [_, relay] : relays_) {
    cancel_timer(relay.nack_timer);
    cancel_timer(relay.expire_timer);
  }
  relays_.clear();
  for (auto& [_, susp] : suspicions_) cancel_timer(susp.timer);
  suspicions_.clear();
}

void Node::schedule_ticks() {
  // Random initial phase desynchronizes the cluster's probe schedules, as
  // independently started agents would be.
  auto& rng = rt_.rng();
  const Duration probe_phase{
      static_cast<std::int64_t>(rng.uniform(
          static_cast<std::uint64_t>(cfg_.probe_interval.us)))};
  probe_tick_timer_ = rt_.schedule(probe_phase, [this] { probe_tick(); });

  const Duration gossip_phase{
      static_cast<std::int64_t>(rng.uniform(
          static_cast<std::uint64_t>(cfg_.gossip_interval.us)))};
  gossip_tick_timer_ = rt_.schedule(gossip_phase, [this] { gossip_tick(); });

  if (cfg_.push_pull_interval > Duration{0}) {
    const Duration pp_phase{
        static_cast<std::int64_t>(rng.uniform(
            static_cast<std::uint64_t>(cfg_.push_pull_interval.us)))};
    push_pull_timer_ = rt_.schedule(pp_phase, [this] { push_pull_tick(); });
  }
  if (cfg_.reconnect_interval > Duration{0}) {
    const Duration rc_phase{
        static_cast<std::int64_t>(rng.uniform(
            static_cast<std::uint64_t>(cfg_.reconnect_interval.us)))};
    reconnect_timer_ = rt_.schedule(rc_phase, [this] { reconnect_tick(); });
  }
  if (cfg_.dead_reclaim_after > Duration{0}) {
    housekeeping_timer_ = rt_.schedule(cfg_.dead_reclaim_after / 2,
                                       [this] { housekeeping_tick(); });
  }
}

void Node::gossip_tick() {
  if (!running_) return;
  gossip_tick_timer_ =
      rt_.schedule(cfg_.gossip_interval, [this] { gossip_tick(); });
  if (rt_.blocked()) {
    gossip_tick_missed_ = true;
    if (gossip_stalled_) return;  // goroutine already stuck in send
    gossip_stalled_ = true;
  }
  gossip_round();
}

void Node::gossip_round() {
  if (bcast_.empty()) return;

  const TimePoint now = rt_.now();
  // Gossip reaches active members plus the recently dead, so a falsely
  // declared node still hears of its death and can refute (memberlist's
  // gossip-to-the-dead).
  auto targets = table_.random_members(
      cfg_.gossip_fanout, rt_.rng(), {}, [&](const Member& m) {
        if (is_active(m.state)) return true;
        return m.state == MemberState::kDead &&
               now - m.state_change < cfg_.gossip_to_dead;
      });
  for (Member* t : targets) {
    if (bcast_.empty()) break;
    send_gossip(t->addr);
  }
}

void Node::push_pull_tick() {
  if (!running_) return;
  push_pull_timer_ =
      rt_.schedule(cfg_.push_pull_interval, [this] { push_pull_tick(); });
  if (rt_.blocked()) {
    // A push-pull is a TCP exchange: a connection attempt made while the
    // process is anomaly-blocked times out and is abandoned long before the
    // anomaly ends (unlike the fire-and-forget UDP sends, which leave the
    // kernel at unblock). No catch-up at unblock.
    return;
  }
  push_pull_round();
}

void Node::push_pull_round() {
  auto peers = table_.random_active(1, rt_.rng(), {});
  if (peers.empty()) return;
  proto::PushPull req;
  req.is_response = false;
  req.join = false;
  req.from = name_;
  req.from_addr = addr_;
  req.members = snapshot_state();
  send_message(peers.front()->addr, Channel::kReliable, req, nullptr);
}

void Node::reconnect_tick() {
  if (!running_) return;
  reconnect_timer_ =
      rt_.schedule(cfg_.reconnect_interval, [this] { reconnect_tick(); });
  if (rt_.blocked()) return;
  // A member that failed (not left) may be on the far side of a healed
  // partition: offer it a full state exchange. If it is genuinely dead the
  // request simply goes unanswered.
  auto dead = table_.random_members(1, rt_.rng(), {}, [](const Member& m) {
    return m.state == MemberState::kDead;
  });
  if (dead.empty()) return;
  proto::PushPull req;
  req.is_response = false;
  req.join = false;
  req.from = name_;
  req.from_addr = addr_;
  req.members = snapshot_state();
  send_message(dead.front()->addr, Channel::kReliable, req, nullptr);
  obs_.reconnect_attempts().add();
}

void Node::housekeeping_tick() {
  if (!running_) return;
  housekeeping_timer_ = rt_.schedule(cfg_.dead_reclaim_after / 2,
                                     [this] { housekeeping_tick(); });
  const TimePoint now = rt_.now();
  std::vector<std::string> reclaim;
  for (const Member* m : table_.all()) {
    if ((m->state == MemberState::kDead || m->state == MemberState::kLeft) &&
        now - m->state_change >= cfg_.dead_reclaim_after) {
      reclaim.push_back(m->name);
    }
  }
  for (const auto& name : reclaim) {
    table_.remove(name);
    obs_.reclaimed().add();
  }
}

void Node::cancel_timer(TimerId& id) {
  if (id != kInvalidTimer) {
    rt_.cancel(id);
    id = kInvalidTimer;
  }
}

void Node::on_unblocked() {
  probe_stalled_ = false;
  gossip_stalled_ = false;
  if (!running_) return;

  // The blocked goroutines resume, in the order the real system would
  // observe: the probe pipeline advances (indirect sends that were stuck,
  // then the expired-deadline evaluation — crucially BEFORE the inbound
  // backlog is drained, because the deadline timers beat the late acks into
  // the channel), then the tickers' pending ticks fire: one fresh probe and
  // one gossip round within the open window.
  if (probe_) {
    if (probe_->pending_indirect) {
      probe_->pending_indirect = false;
      if (!probe_->acked) launch_indirect();
    }
    if (probe_->pending_finish) {
      probe_->pending_finish = false;
      finish_probe();
    }
  }
  if (probe_tick_missed_) {
    probe_tick_missed_ = false;
    start_probe_once();
  }
  if (gossip_tick_missed_) {
    gossip_tick_missed_ = false;
    gossip_round();
  }
}

// ---- outbound ------------------------------------------------------------

void Node::send_message(const Address& to, Channel ch,
                        const proto::Message& control,
                        const std::string* ping_target) {
  BufWriter cw(64);
  proto::encode(control, cw);
  std::vector<std::uint8_t> control_frame = std::move(cw).take();

  std::size_t budget = 0;
  const std::size_t base =
      control_frame.size() + proto::kCompoundHeaderBytes +
      proto::compound_frame_overhead(control_frame.size());
  if (base < cfg_.max_packet_bytes) budget = cfg_.max_packet_bytes - base;

  std::vector<std::vector<std::uint8_t>> frames;
  if (budget > 0) {
    frames = piggyback_->select(budget, table_.num_active(), ping_target);
  }
  // Gossip first, control last: a buddy-carried suspect about the ping
  // target is then processed before the ping, so the ack can already carry
  // the refutation.
  frames.push_back(std::move(control_frame));
  auto datagram = proto::pack_compound(frames, rt_.acquire_buffer());
  count_sent(proto::msg_type_name(proto::message_type(control)),
             datagram.size(), ch);
  rt_.send(to, std::move(datagram), ch);
}

void Node::send_gossip(const Address& to) {
  auto frames =
      piggyback_->select(cfg_.max_packet_bytes - proto::kCompoundHeaderBytes,
                         table_.num_active(), nullptr);
  if (frames.empty()) return;
  auto datagram = proto::pack_compound(frames, rt_.acquire_buffer());
  count_sent("gossip", datagram.size(), Channel::kUdp);
  rt_.send(to, std::move(datagram), Channel::kUdp);
}

void Node::count_sent(const char* type, std::size_t bytes, Channel ch) {
  obs_.count_sent(type, bytes, ch);
  obs_.gossip_pending().set(static_cast<double>(bcast_.pending()));
}

void Node::broadcast(const std::string& member, const proto::Message& m) {
  BufWriter w(48);
  proto::encode(m, w);
  bcast_.queue(member, std::move(w).take());
  obs_.gossip_pending().set(static_cast<double>(bcast_.pending()));
}

// ---- inbound dispatch ------------------------------------------------------

void Node::on_packet(const Address& from, std::span<const std::uint8_t> payload,
                     Channel channel) {
  if (!running_) return;
  obs_.count_received(payload.size());

  std::vector<std::span<const std::uint8_t>> frames;
  if (!proto::unpack_compound(payload, frames)) {
    obs_.malformed().add();
    return;
  }
  for (const auto& frame : frames) {
    BufReader r(frame);
    auto msg = proto::decode(r);
    if (!msg) {
      obs_.malformed().add();
      continue;
    }
    struct Visitor {
      Node& n;
      const Address& from;
      Channel ch;
      void operator()(const proto::Ping& p) { n.handle_ping(from, p, ch); }
      void operator()(const proto::PingReq& p) { n.handle_ping_req(p, ch); }
      void operator()(const proto::Ack& a) { n.handle_ack(a); }
      void operator()(const proto::Nack& x) { n.handle_nack(x); }
      void operator()(const proto::Suspect& s) { n.on_suspect_msg(s); }
      void operator()(const proto::Alive& a) { n.on_alive_msg(a); }
      void operator()(const proto::Dead& d) { n.on_dead_msg(d); }
      void operator()(const proto::PushPull& p) { n.handle_push_pull(p); }
    };
    std::visit(Visitor{*this, from, channel}, *msg);
    if (!running_) break;  // a handler may have stopped the node
  }
}

std::optional<MemberState> Node::state_of(const std::string& member) const {
  const Member* m = table_.find(member);
  if (m == nullptr) return std::nullopt;
  return m->state;
}

std::vector<std::string> Node::active_view() const {
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(table_.num_active()));
  for (const Member* m : table_.all()) {
    if (is_active(m->state)) out.push_back(m->name);
  }
  return out;
}

int Node::suspect_count() const {
  int n = 0;
  for (const Member* m : table_.all()) {
    n += m->state == MemberState::kSuspect ? 1 : 0;
  }
  return n;
}

int Node::dead_count() const {
  int n = 0;
  for (const Member* m : table_.all()) {
    n += m->state == MemberState::kDead ? 1 : 0;
  }
  return n;
}

}  // namespace lifeguard::swim
