// swim::Node — a complete SWIM + Lifeguard group-membership agent.
//
// One Node is one group member. It implements:
//   * SWIM's randomized round-robin probe failure detector with indirect
//     probes (ping / ping-req / ack) and the Suspicion subprotocol
//     (suspect / alive / dead with incarnation precedence),
//   * memberlist's extensions: dedicated gossip tick, reliable-channel
//     fallback direct probe, anti-entropy push-pull state sync, dead-node
//     retention and gossip-to-the-dead,
//   * the three Lifeguard components (paper §IV), each independently
//     switchable via Config: LHA-Probe (Local Health Multiplier scaling the
//     probe interval/timeout, plus the nack protocol), LHA-Suspicion
//     (dynamic suspicion timeouts with re-gossip of the first K independent
//     suspicions) and the Buddy System piggyback selector.
//
// All interaction with the environment goes through Runtime; the node is
// single-threaded and never blocks. Incoming datagrams enter through
// on_packet(); membership transitions exit through the EventListener.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logger.h"
#include "common/metrics.h"
#include "common/types.h"
#include "membership/agent.h"
#include "obs/registry.h"
#include "proto/broadcast.h"
#include "proto/wire.h"
#include "runtime/runtime.h"
#include "swim/config.h"
#include "swim/events.h"
#include "swim/local_health.h"
#include "swim/membership.h"
#include "swim/piggyback.h"
#include "swim/suspicion.h"

namespace lifeguard::swim {

class ProbeObserver;

class Node : public membership::Agent {
 public:
  /// Membership transitions are published on events(); attach observers with
  /// subscribe(). `listener` is a deprecated convenience — a non-null pointer
  /// is auto-subscribed and must outlive the node.
  Node(std::string name, Address addr, Config cfg, Runtime& rt,
       EventListener* listener = nullptr);
  ~Node() override;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // ---- lifecycle (membership::Agent) ----
  /// Marks self alive and begins the probe / gossip / push-pull schedules.
  void start() override;
  /// Initiates a push-pull join exchange with each seed address.
  void join(const std::vector<Address>& seeds) override;
  /// Graceful leave: broadcasts a dead-about-self (left) message. The node
  /// keeps running so the intent disseminates; call stop() afterwards.
  void leave() override;
  /// Cancels all timers; the node goes quiet. Idempotent.
  void stop() override;
  bool running() const override { return running_; }

  // ---- runtime callbacks ----
  void on_packet(const Address& from, std::span<const std::uint8_t> payload,
                 Channel channel) override;
  /// Invoked by the simulator when an injected anomaly ends; re-enables the
  /// stalled probe/gossip loops.
  void on_unblocked() override;

  // ---- events ----
  /// Bus carrying every membership transition this node observes.
  const EventBus& events() const { return events_; }
  /// Shorthand for events().subscribe(fn).
  [[nodiscard]] EventBus::Subscription subscribe(EventBus::Handler fn) override {
    return events_.subscribe(std::move(fn));
  }

  // ---- introspection ----
  const std::string& name() const override { return name_; }
  const Address& address() const override { return addr_; }
  const Config& config() const { return cfg_; }
  const MembershipTable& members() const { return table_; }
  const LocalHealth& local_health() const { return health_; }
  std::uint64_t incarnation() const { return incarnation_; }
  Metrics& metrics() override { return metrics_; }
  const Metrics& metrics() const override { return metrics_; }
  Logger& logger() { return log_; }
  /// Convenience for tests/harness: this node's view of `member`'s state, or
  /// nullopt when unknown.
  std::optional<MemberState> state_of(const std::string& member) const;
  std::size_t pending_broadcasts() const { return bcast_.pending(); }
  /// Read-only view of the gossip queue (checking layer: retransmit bound).
  const proto::BroadcastQueue& broadcasts() const { return bcast_; }
  /// Typed view over metrics() plus the live gauges samplers read.
  const obs::NodeMetrics& observed() const { return obs_; }
  /// Attach a probe-pipeline lifecycle observer (telemetry spans); nullptr
  /// detaches. The observer must outlive the node or be detached first.
  void set_probe_observer(ProbeObserver* o) override { probe_observer_ = o; }

  /// Test-only planted defect ("swim:plant=drop-refute"): the node never
  /// refutes suspicion or death gossip about itself, so a healthy member
  /// stays dead in every other view — the dropped-refute bug the fuzzer's
  /// planted regression suite must rediscover. Default off; never enable
  /// outside tests.
  void plant_drop_refute(bool enabled) { plant_drop_refute_ = enabled; }

  // ---- membership::Agent views ----
  int active_members() const override { return table_.num_active(); }
  std::vector<std::string> active_view() const override;
  int suspect_count() const override;
  int dead_count() const override;
  double health_score() const override {
    return static_cast<double>(health_.score());
  }
  std::size_t pending_broadcast_count() const override {
    return bcast_.pending();
  }
  std::int64_t gossip_transmits_total() const override {
    return bcast_.total_transmits();
  }

 private:
  // ---- outbound (node.cc) ----
  /// Encode `control` plus piggybacked gossip into one compound datagram and
  /// transmit it. Gossip frames precede the control frame so a refutation
  /// triggered by a buddy suspect is processed before the ping it rides on.
  void send_message(const Address& to, Channel ch, const proto::Message& control,
                    const std::string* ping_target);
  /// Pure gossip datagram (dedicated gossip tick); no-op if nothing queued.
  void send_gossip(const Address& to);
  void count_sent(const char* type, std::size_t bytes, Channel ch);
  /// Enqueue an encoded state update for gossip dissemination.
  void broadcast(const std::string& member, const proto::Message& m);

  // ---- schedules (node.cc) ----
  void schedule_ticks();
  void gossip_tick();
  /// One fan-out round of pure gossip packets (shared by the tick and the
  /// unblock catch-up).
  void gossip_round();
  void push_pull_tick();
  /// One anti-entropy exchange with a random peer (tick / unblock catch-up).
  void push_pull_round();
  /// One push-pull join request to every stored seed.
  void send_join_requests();
  /// Re-sends the join exchange until a full sync response has merged
  /// (memberlist callers retry a failed Join).
  void join_retry_tick();
  /// Periodic reconnect attempt: push-pull with a random dead member so
  /// healed partitions re-merge (Serf-style).
  void reconnect_tick();
  void housekeeping_tick();
  void cancel_timer(TimerId& id);

  // ---- probe pipeline (node_probe.cc) ----
  void probe_tick();
  /// Select the next round-robin target and begin probing it, if no probe is
  /// already in flight.
  void start_probe_once();
  void begin_probe(Member& target);
  void probe_timeout_expired();
  void launch_indirect();
  void finish_probe();
  Duration scaled_probe_interval() const;
  Duration scaled_probe_timeout() const;
  void handle_ping(const Address& from, const proto::Ping& p, Channel ch);
  void handle_ping_req(const proto::PingReq& p, Channel ch);
  void handle_ack(const proto::Ack& a);
  void handle_nack(const proto::Nack& n);

  // ---- state machine (node_handlers.cc) ----
  void on_alive_msg(const proto::Alive& a);
  void on_suspect_msg(const proto::Suspect& s);
  void on_dead_msg(const proto::Dead& d);
  void start_suspicion(Member& m, std::uint64_t incarnation,
                       const std::string& from);
  void arm_suspicion_timer(Suspicion& susp);
  void on_suspicion_timeout(const std::string& member);
  void cancel_suspicion(const std::string& member);
  /// Gossip a higher-incarnation alive about self; bumps local health.
  void refute(std::uint64_t suspected_incarnation);
  void emit(EventType type, const Member& m, const std::string& origin,
            bool originated);
  /// Encoded suspect frame about `target` iff we currently suspect it
  /// (Buddy System priority frame).
  std::optional<std::vector<std::uint8_t>> buddy_frame(
      const std::string& target);

  // ---- anti-entropy (node_sync.cc) ----
  void handle_push_pull(const proto::PushPull& p);
  std::vector<proto::MemberSnapshot> snapshot_state() const;
  void merge_remote_state(const proto::PushPull& p);

  // ---- data ----
  std::string name_;
  Address addr_;
  Config cfg_;
  Runtime& rt_;
  EventBus events_;
  /// Keeps a legacy constructor-passed EventListener attached to the bus.
  EventBus::Subscription legacy_listener_sub_;

  MembershipTable table_;
  proto::BroadcastQueue bcast_;
  std::unique_ptr<PiggybackSelector> piggyback_;
  LocalHealth health_;
  Logger log_;
  Metrics metrics_;
  /// Typed facade over metrics_: every protocol-path counter/histogram is
  /// resolved once here, so hot paths bump pointers instead of doing
  /// string-keyed map lookups (this subsumes the hand-rolled Counter*
  /// caches the node used to carry).
  obs::NodeMetrics obs_;
  ProbeObserver* probe_observer_ = nullptr;

  std::uint64_t incarnation_ = 0;
  std::uint32_t next_seq_ = 1;
  bool running_ = false;
  bool leaving_ = false;
  bool plant_drop_refute_ = false;

  /// In-flight direct/indirect probe state for the current protocol period.
  struct ProbeState {
    std::uint32_t seq = 0;
    std::string target;
    /// When the direct ping left (virtual time in sim): the RTT baseline.
    TimePoint started{};
    bool acked = false;
    bool indirect_started = false;
    int nacks_expected = 0;
    int nacks_received = 0;
    /// Period ended while the runtime was blocked: the probe goroutine is
    /// still stuck in send(), so the outcome is evaluated at unblock.
    bool pending_finish = false;
    /// Ack timeout expired while blocked: the indirect stage could not be
    /// launched (goroutine stuck); it launches at unblock.
    bool pending_indirect = false;
    TimerId timeout_timer = kInvalidTimer;
    TimerId period_timer = kInvalidTimer;
  };
  std::optional<ProbeState> probe_;
  /// Set when a tick fired while the runtime was anomaly-blocked: models the
  /// probe/gossip goroutine stuck in send(); cleared on unblock.
  bool probe_stalled_ = false;
  bool gossip_stalled_ = false;
  /// Ticks that fired while blocked leave one pending tick behind (Go ticker
  /// semantics): the corresponding loop runs once, promptly, at unblock.
  bool probe_tick_missed_ = false;
  bool gossip_tick_missed_ = false;

  /// Relay bookkeeping for ping-req service: our ping seq -> origin.
  struct RelayState {
    std::uint32_t origin_seq = 0;
    std::string origin;
    Address origin_addr;
    Channel channel = Channel::kUdp;
    bool acked = false;
    bool nack_wanted = false;
    TimerId nack_timer = kInvalidTimer;
    TimerId expire_timer = kInvalidTimer;
  };
  std::unordered_map<std::uint32_t, RelayState> relays_;

  std::unordered_map<std::string, Suspicion> suspicions_;

  /// Seeds of the most recent join(), kept for the retry loop; join_synced_
  /// flips once any push-pull response merges, which ends the retries.
  std::vector<Address> join_seeds_;
  bool join_synced_ = false;

  TimerId probe_tick_timer_ = kInvalidTimer;
  TimerId gossip_tick_timer_ = kInvalidTimer;
  TimerId push_pull_timer_ = kInvalidTimer;
  TimerId reconnect_timer_ = kInvalidTimer;
  TimerId join_retry_timer_ = kInvalidTimer;
  TimerId housekeeping_timer_ = kInvalidTimer;
};

}  // namespace lifeguard::swim
