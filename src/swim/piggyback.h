// Piggyback selection — which gossip frames ride on an outgoing packet.
//
// SWIM piggybacks dissemination updates on failure-detector messages; the
// selection policy is what the Buddy System (paper §IV-C) replaces. The
// default policy simply drains the transmit-limited broadcast queue. The
// buddy policy guarantees that a ping to a member we currently suspect
// carries the suspect message about that member as its first frame — so a
// suspected node learns of the suspicion at the first opportunity and can
// begin refutation sooner — before filling the rest of the budget normally.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "proto/broadcast.h"

namespace lifeguard::swim {

class PiggybackSelector {
 public:
  virtual ~PiggybackSelector() = default;

  /// Frames to append to an outgoing packet. `byte_budget` is the remaining
  /// room in the packet; `n` the active cluster size (for retransmit limits);
  /// `ping_target` is non-null iff the packet is a ping to that member.
  virtual std::vector<std::vector<std::uint8_t>> select(
      std::size_t byte_budget, int n, const std::string* ping_target) = 0;
};

/// SWIM's policy: drain the broadcast queue, fewest-transmits first.
class DefaultPiggyback : public PiggybackSelector {
 public:
  explicit DefaultPiggyback(proto::BroadcastQueue& queue) : queue_(queue) {}

  std::vector<std::vector<std::uint8_t>> select(
      std::size_t byte_budget, int n, const std::string* ping_target) override;

 protected:
  proto::BroadcastQueue& queue_;
};

/// Lifeguard's Buddy System. `priority_frame` returns the encoded suspect
/// message about `target` when the local node currently suspects it.
class BuddyPiggyback : public DefaultPiggyback {
 public:
  using PriorityFrameFn =
      std::function<std::optional<std::vector<std::uint8_t>>(
          const std::string& target)>;

  BuddyPiggyback(proto::BroadcastQueue& queue, PriorityFrameFn priority_frame)
      : DefaultPiggyback(queue), priority_frame_(std::move(priority_frame)) {}

  std::vector<std::vector<std::uint8_t>> select(
      std::size_t byte_budget, int n, const std::string* ping_target) override;

 private:
  PriorityFrameFn priority_frame_;
};

}  // namespace lifeguard::swim
