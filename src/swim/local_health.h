// Local Health Multiplier — LHA-Probe's feedback accumulator (paper §IV-A).
//
// A saturating counter in [0, S]. Events that suggest the *local* failure
// detector is processing messages slowly raise it; timely acks lower it. The
// probe interval and timeout scale by (LHM + 1), so a node that suspects its
// own timeliness backs off before accusing peers:
//
//   +1  failed probe (no ack by period end)
//   +1  each missed nack from an indirect-probe relay
//   +1  refuting a suspicion about self
//   −1  successful probe
#pragma once

#include <algorithm>

#include "common/types.h"

namespace lifeguard::swim {

class LocalHealth {
 public:
  /// `max_score` is S; `enabled` false pins the multiplier at 1 (baseline
  /// SWIM keeps fixed timings regardless of events fed in).
  LocalHealth(int max_score, bool enabled)
      : max_(max_score), enabled_(enabled) {}

  void probe_success() { adjust(-1); }
  void probe_failed() { adjust(+1); }
  void missed_nack() { adjust(+1); }
  void refuted_suspicion() { adjust(+1); }

  /// Current LHM value in [0, S].
  int score() const { return enabled_ ? score_ : 0; }
  /// Timing multiplier (LHM + 1) in [1, S+1].
  int multiplier() const { return score() + 1; }
  /// Scale a base duration by the multiplier.
  Duration scale(Duration base) const { return base * multiplier(); }

  bool enabled() const { return enabled_; }

 private:
  void adjust(int delta) {
    if (!enabled_) return;
    score_ = std::clamp(score_ + delta, 0, max_);
  }

  int max_;
  bool enabled_;
  int score_ = 0;
};

}  // namespace lifeguard::swim
