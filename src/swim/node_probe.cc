// The failure-detector probe pipeline (paper §III-A, §IV-A).
//
// Each protocol period: pick the next round-robin target, direct-probe it
// over UDP; on timeout, enlist k relays via ping-req (plus memberlist's
// reliable-channel fallback direct probe); at the period's end, either credit
// local health (ack seen) or debit it (failed probe, missed nacks) and raise
// a suspicion. With LHA-Probe enabled both the period and the timeout scale
// by (LHM + 1).
#include "swim/node.h"

#include "swim/probe_observer.h"

namespace lifeguard::swim {

Duration Node::scaled_probe_interval() const {
  return health_.scale(cfg_.probe_interval);
}

Duration Node::scaled_probe_timeout() const {
  return health_.scale(cfg_.probe_timeout);
}

void Node::probe_tick() {
  if (!running_) return;
  // The next tick is scheduled at the *scaled* interval:
  // ProbeInterval = BaseProbeInterval · (LHM + 1)     (paper §IV-A)
  probe_tick_timer_ =
      rt_.schedule(scaled_probe_interval(), [this] { probe_tick(); });

  if (rt_.blocked()) {
    probe_tick_missed_ = true;  // one pending tick survives the anomaly
    if (probe_stalled_) return;  // probe loop already stuck in send()
    // First tick while blocked proceeds: in the real system the loop arms
    // its timeout and then blocks inside send(), so exactly one probe is in
    // flight for the whole anomaly. Our queued send models the late packet.
    probe_stalled_ = true;
  }
  start_probe_once();
}

void Node::start_probe_once() {
  if (probe_) return;  // previous (stretched/deferred) probe still in flight
  Member* target = table_.next_probe_target(rt_.rng());
  if (target == nullptr) return;
  begin_probe(*target);
}

void Node::begin_probe(Member& target) {
  ProbeState ps;
  ps.seq = next_seq_++;
  ps.target = target.name;
  ps.started = rt_.now();
  probe_ = ps;
  obs_.probe_started().add();
  if (probe_observer_ != nullptr) probe_observer_->on_probe_start(target.name);

  proto::Ping ping{probe_->seq, target.name, name_, addr_};
  send_message(target.addr, Channel::kUdp, ping, &target.name);

  probe_->timeout_timer = rt_.schedule(scaled_probe_timeout(),
                                       [this] { probe_timeout_expired(); });
  // Finish strictly before the next tick fires (same scaled length).
  probe_->period_timer = rt_.schedule(scaled_probe_interval() - usec(1),
                                      [this] { finish_probe(); });
}

void Node::probe_timeout_expired() {
  if (!probe_) return;
  probe_->timeout_timer = kInvalidTimer;
  if (probe_->acked || probe_->indirect_started) return;
  // Anomaly-blocked: the probing goroutine is stuck in send(), so the
  // indirect stage cannot be launched now; it launches when the anomaly
  // ends (on_unblocked), exactly as the resumed goroutine would.
  if (rt_.blocked()) {
    probe_->pending_indirect = true;
    return;
  }
  launch_indirect();
}

void Node::launch_indirect() {
  if (!probe_ || probe_->indirect_started) return;
  probe_->indirect_started = true;
  obs_.probe_indirect().add();
  if (probe_observer_ != nullptr) {
    probe_observer_->on_probe_indirect(probe_->target);
  }

  Member* target = table_.find(probe_->target);
  if (target == nullptr) return;

  const bool want_nack = cfg_.lha_probe && cfg_.nack_enabled;
  auto relays = table_.random_active(cfg_.indirect_checks, rt_.rng(),
                                     {probe_->target});
  probe_->nacks_expected = want_nack ? static_cast<int>(relays.size()) : 0;
  for (Member* relay : relays) {
    proto::PingReq req;
    req.seq = probe_->seq;
    req.target = probe_->target;
    req.target_addr = target->addr;
    req.source = name_;
    req.source_addr = addr_;
    req.probe_timeout_us = scaled_probe_timeout().us;
    req.want_nack = want_nack;
    send_message(relay->addr, Channel::kUdp, req, nullptr);
  }

  // memberlist extension: in parallel with the indirect probes, retry the
  // direct probe over the reliable channel (catches UDP-only pathologies).
  if (cfg_.reliable_fallback_probe) {
    proto::Ping ping{probe_->seq, probe_->target, name_, addr_};
    send_message(target->addr, Channel::kReliable, ping, &probe_->target);
  }
}

void Node::finish_probe() {
  if (!probe_) return;
  probe_->period_timer = kInvalidTimer;
  if (rt_.blocked()) {
    // The probing goroutine is stuck in send(); it observes the expired
    // deadline the moment the anomaly ends and evaluates the outcome then —
    // before the inbound backlog (with any late acks) is processed, exactly
    // as memberlist's probeNode resumes ahead of the UDP reader.
    probe_->pending_finish = true;
    return;
  }
  cancel_timer(probe_->timeout_timer);

  const std::string target = probe_->target;
  const int missed_nacks =
      std::max(0, probe_->nacks_expected - probe_->nacks_received);
  probe_.reset();

  // Only unacked probes reach the period deadline (acked ones complete and
  // reset in handle_ack): this is the failure path.
  obs_.probe_failed().add();
  health_.probe_failed();
  for (int i = 0; i < missed_nacks; ++i) {
    health_.missed_nack();
    obs_.probe_missed_nack().add();
  }
  obs_.lhm().set(static_cast<double>(health_.score()));
  if (probe_observer_ != nullptr) probe_observer_->on_probe_fail(target);

  Member* m = table_.find(target);
  if (m == nullptr || !is_active(m->state)) return;
  // Locally originated suspicion: feed it through the same path gossip
  // takes, with ourselves as the independent originator.
  on_suspect_msg(proto::Suspect{target, m->incarnation, name_});
}

// ---- probe message handlers -------------------------------------------------

void Node::handle_ping(const Address& /*from*/, const proto::Ping& p,
                       Channel ch) {
  if (p.target != name_) {
    // Stale addressing (e.g. a reused address); memberlist drops these.
    obs_.probe_misrouted_ping().add();
    return;
  }
  proto::Ack ack{p.seq, name_};
  send_message(p.source_addr, ch, ack, nullptr);
}

void Node::handle_ping_req(const proto::PingReq& p, Channel ch) {
  // Serve as relay: probe the target with our own sequence number and map it
  // back to the origin's.
  const std::uint32_t relay_seq = next_seq_++;
  RelayState relay;
  relay.origin_seq = p.seq;
  relay.origin = p.source;
  relay.origin_addr = p.source_addr;
  relay.channel = ch;
  relay.nack_wanted = p.want_nack;

  proto::Ping ping{relay_seq, p.target, name_, addr_};
  send_message(p.target_addr, Channel::kUdp, ping, &p.target);
  obs_.probe_relayed().add();

  const Duration timeout{std::max<std::int64_t>(p.probe_timeout_us, 1000)};
  if (p.want_nack) {
    // Lifeguard nack: report our own timeliness to the origin even if the
    // target stays silent, at 80% of the origin's probe timeout (§IV-A).
    relay.nack_timer =
        rt_.schedule(timeout.scaled(cfg_.nack_fraction), [this, relay_seq] {
          auto it = relays_.find(relay_seq);
          if (it == relays_.end() || it->second.acked) return;
          it->second.nack_timer = kInvalidTimer;
          proto::Nack nack{it->second.origin_seq, name_};
          send_message(it->second.origin_addr, it->second.channel, nack,
                       nullptr);
          obs_.probe_nack_sent().add();
        });
  }
  // Keep the mapping around long enough for a late ack to still be
  // forwarded (it counts as success at the origin if within its period).
  relay.expire_timer = rt_.schedule(timeout * 4, [this, relay_seq] {
    auto it = relays_.find(relay_seq);
    if (it == relays_.end()) return;
    cancel_timer(it->second.nack_timer);
    relays_.erase(it);
  });
  relays_.emplace(relay_seq, relay);
}

void Node::handle_ack(const proto::Ack& a) {
  if (probe_ && probe_->seq == a.seq) {
    // Success: the probe completes immediately (memberlist's probeNode
    // returns on the first ack), freeing the loop for the next tick.
    // A timely ack means the local detector is keeping up (paper: −1).
    probe_->acked = true;
    health_.probe_success();
    obs_.lhm().set(static_cast<double>(health_.score()));
    obs_.probe_acked().add();
    obs_.probe_success().add();
    const Duration rtt = rt_.now() - probe_->started;
    obs_.probe_rtt_us().record(static_cast<double>(rtt.us));
    const std::string target = probe_->target;
    cancel_timer(probe_->timeout_timer);
    cancel_timer(probe_->period_timer);
    probe_.reset();
    if (probe_observer_ != nullptr) probe_observer_->on_probe_ack(target, rtt);
    return;
  }
  // Ack from a target we probed on someone's behalf: forward to the origin.
  auto it = relays_.find(a.seq);
  if (it == relays_.end()) {
    obs_.probe_stale_ack().add();
    return;
  }
  RelayState& relay = it->second;
  if (!relay.acked) {
    relay.acked = true;
    proto::Ack fwd{relay.origin_seq, a.from};
    send_message(relay.origin_addr, relay.channel, fwd, nullptr);
    obs_.probe_ack_forwarded().add();
  }
}

void Node::handle_nack(const proto::Nack& n) {
  if (probe_ && probe_->seq == n.seq) {
    ++probe_->nacks_received;
    obs_.probe_nack_received().add();
    if (probe_observer_ != nullptr) {
      probe_observer_->on_probe_nack(probe_->target, n.from);
    }
  }
}

}  // namespace lifeguard::swim
