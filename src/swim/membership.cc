#include "swim/membership.h"

#include <algorithm>

namespace lifeguard::swim {

MembershipTable::MembershipTable(std::string self_name)
    : self_(std::move(self_name)) {}

Member* MembershipTable::find(const std::string& name) {
  const auto it = members_.find(name);
  return it == members_.end() ? nullptr : &it->second;
}

const Member* MembershipTable::find(const std::string& name) const {
  const auto it = members_.find(name);
  return it == members_.end() ? nullptr : &it->second;
}

bool MembershipTable::contains(const std::string& name) const {
  return members_.contains(name);
}

std::vector<const Member*> MembershipTable::all() const {
  std::vector<const Member*> out;
  out.reserve(members_.size());
  for (const auto& [_, m] : members_) out.push_back(&m);
  return out;
}

Member& MembershipTable::add(Member m, Rng& rng) {
  auto [it, inserted] = members_.emplace(m.name, std::move(m));
  if (inserted && is_active(it->second.state)) ++active_;
  if (inserted && it->first != self_) {
    // Random-position insertion keeps expected first-detection latency equal
    // to uniform random selection (paper §III-A).
    const std::size_t pos =
        static_cast<std::size_t>(rng.uniform(probe_order_.size() + 1));
    probe_order_.insert(probe_order_.begin() + static_cast<std::ptrdiff_t>(pos),
                        &it->first);
    if (pos < probe_index_) ++probe_index_;
  }
  return it->second;
}

void MembershipTable::set_state(Member& m, MemberState s, TimePoint now) {
  active_ += static_cast<int>(is_active(s)) - static_cast<int>(is_active(m.state));
  m.state = s;
  m.state_change = now;
}

void MembershipTable::remove(const std::string& name) {
  const auto it = members_.find(name);
  if (it == members_.end()) return;
  if (is_active(it->second.state)) --active_;
  // Probe entries point at the stored key: drop them before the member.
  std::erase_if(probe_order_,
                [&](const std::string* p) { return *p == name; });
  members_.erase(it);
  if (probe_index_ > probe_order_.size()) probe_index_ = 0;
}

Member* MembershipTable::next_probe_target(Rng& rng) {
  // At most one full pass + reshuffle; bails out if nothing is eligible.
  std::size_t checked = 0;
  const std::size_t limit = probe_order_.size() + 1;
  while (checked++ < limit) {
    if (probe_index_ >= probe_order_.size()) {
      rng.shuffle(probe_order_);
      probe_index_ = 0;
      if (probe_order_.empty()) return nullptr;
    }
    const std::string& name = *probe_order_[probe_index_++];
    Member* m = find(name);
    if (m != nullptr && m->name != self_ && is_active(m->state)) return m;
  }
  return nullptr;
}

std::vector<Member*> MembershipTable::random_active(
    int k, Rng& rng, const std::vector<std::string>& exclude) {
  return random_members(k, rng, exclude,
                        [](const Member& m) { return is_active(m.state); });
}

}  // namespace lifeguard::swim
