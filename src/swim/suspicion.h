// Suspicion bookkeeping — the heart of LHA-Suspicion (paper §IV-B).
//
// The timeout for a suspicion starts at Max and decays toward Min as
// *independent* suspicions (same member, distinct originators) are processed:
//
//   timeout(C) = max(Min, Max − (Max−Min) · log(C+1) / log(K+1))
//
// where C counts independent confirmations received since the local suspicion
// was raised and K is the confirmation count that drives the timeout all the
// way to Min. Logarithmic decay: the first confirmation buys the largest
// reduction. With Min == Max (or K == 0) this degrades to SWIM's fixed
// timeout, which is how the SWIM baseline is expressed.
//
// This class is pure bookkeeping (no timers); the node owns the actual timer
// and re-arms it from remaining_at().
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "runtime/runtime.h"

namespace lifeguard::swim {

/// The paper's timeout formula, exposed for tests and benches.
/// C < 0 is treated as 0; K <= 0 yields Min-style fixed behaviour via Max.
Duration suspicion_timeout(Duration min, Duration max, int k, int c);

/// Computes Min for the current cluster: α·log10(n)·probe_interval, clamped
/// below by α·probe_interval so tiny clusters keep a sane floor (§V-C).
Duration suspicion_min(double alpha, int n, Duration probe_interval);

class Suspicion {
 public:
  /// `first_from` is the originator of the suspicion that created this state
  /// (self when we raised it from a failed probe, or the gossip originator
  /// when adopted). It counts toward K but not toward C.
  Suspicion(std::string member, std::uint64_t incarnation,
            std::string first_from, Duration min, Duration max, int k,
            TimePoint start);

  /// Register an independent suspicion from `from`. Returns true when `from`
  /// is new AND more confirmations were still wanted — the caller should then
  /// re-gossip the suspicion and re-arm its timer (paper: the first K
  /// independent suspicions are re-gossiped).
  bool confirm(const std::string& from);

  /// Current timeout given confirmations so far.
  Duration timeout() const;
  /// Deadline = start + timeout().
  TimePoint deadline() const { return start_ + timeout(); }
  /// Time left until the deadline as seen from `now` (may be negative).
  Duration remaining_at(TimePoint now) const { return deadline() - now; }

  int confirmations() const { return confirmation_count_; }
  /// All distinct originators seen (creator + confirmations); diagnostics.
  std::vector<std::string> origins() const {
    return {seen_from_.begin(), seen_from_.end()};
  }
  bool accepts_more() const { return confirmation_count_ < k_; }
  const std::string& member() const { return member_; }
  std::uint64_t incarnation() const { return incarnation_; }
  void set_incarnation(std::uint64_t inc) { incarnation_ = inc; }
  TimePoint start() const { return start_; }

  /// Timer handle owned by the node (kInvalidTimer when not armed).
  TimerId timer = kInvalidTimer;

 private:
  std::string member_;
  std::uint64_t incarnation_;
  Duration min_;
  Duration max_;
  int k_;
  TimePoint start_;
  int confirmation_count_ = 0;  // C: independent confirmations after creation
  std::unordered_set<std::string> seen_from_;
};

}  // namespace lifeguard::swim
