#include "swim/config.h"

namespace lifeguard::swim {

Config Config::swim_baseline() {
  Config c;
  c.lha_probe = false;
  c.lha_suspicion = false;
  c.buddy_system = false;
  c.suspicion_alpha = 5.0;
  c.suspicion_beta = 1.0;  // fixed timeout
  return c;
}

Config Config::lifeguard() { return Config{}; }

Config Config::lha_probe_only() {
  Config c = swim_baseline();
  c.lha_probe = true;
  return c;
}

Config Config::lha_suspicion_only() {
  Config c = swim_baseline();
  c.lha_suspicion = true;
  c.suspicion_beta = 6.0;
  return c;
}

Config Config::buddy_only() {
  Config c = swim_baseline();
  c.buddy_system = true;
  return c;
}

std::string Config::table1_name() const {
  if (!lha_probe && !lha_suspicion && !buddy_system) return "SWIM";
  if (lha_probe && !lha_suspicion && !buddy_system) return "LHA-Probe";
  if (!lha_probe && lha_suspicion && !buddy_system) return "LHA-Suspicion";
  if (!lha_probe && !lha_suspicion && buddy_system) return "Buddy System";
  if (lha_probe && lha_suspicion && buddy_system) return "Lifeguard";
  return "Custom";
}

std::optional<Config> Config::from_table1_name(std::string_view name) {
  if (name == "SWIM") return swim_baseline();
  if (name == "LHA-Probe") return lha_probe_only();
  if (name == "LHA-Suspicion") return lha_suspicion_only();
  if (name == "Buddy System") return buddy_only();
  if (name == "Lifeguard") return lifeguard();
  return std::nullopt;
}

}  // namespace lifeguard::swim
