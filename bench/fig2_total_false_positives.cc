// Reproduces Figure 2: total false positives (FP Events) versus the number
// of concurrent anomalies, one series per Table I configuration (log-scale
// quantity; printed as a table of series).
#include "bench_common.h"
#include "harness/table.h"

using namespace lifeguard;
using namespace lifeguard::harness;

namespace {

// Figure 2/3 need the full concurrency axis; the (D, I) set is reduced in
// quick mode (representative small-D and large-D cells).
Grid figure_grid(const ReproOptions& opt) {
  Grid g = interval_grid(opt);
  g.concurrency = {1, 4, 8, 12, 16, 20, 24, 28, 32};
  if (!opt.full) {
    g.durations = {msec(16384), msec(32768)};
    g.intervals = {msec(4), msec(256)};
  }
  return g;
}

}  // namespace

int main() {
  const auto opt = ReproOptions::from_env();
  bench::print_banner("Figure 2 — Total false positives vs concurrency",
                      "Dadgar et al., DSN'18, Fig. 2 (alpha=5, beta=6)", opt);
  const Grid grid = figure_grid(opt);

  std::vector<std::string> headers{"Concurrent anomalies"};
  for (int c : grid.concurrency) headers.push_back("C=" + std::to_string(c));
  Table table(std::move(headers));

  for (const auto& nc : table1_configs(5.0, 6.0)) {
    const auto r = sweep_interval(nc.config, grid, opt.seed,
                                  stderr_progress(nc.name));
    std::vector<std::string> row{nc.name};
    for (int c : grid.concurrency) {
      row.push_back(fmt_int(r.fp_by_c.at(c)));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf(
      "\nPaper (Fig. 2): FP rises with concurrency for every configuration;"
      "\nfull Lifeguard sits 50-100x below SWIM at every level.\n");
  return 0;
}
