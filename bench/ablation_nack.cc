// Ablation A2: value of the nack mechanism inside LHA-Probe (paper §IV-A).
// Without nacks a member cannot distinguish "target down" from "my relays
// (or I) are slow", so its LHM rises more slowly.
#include "bench_common.h"
#include "harness/table.h"

using namespace lifeguard;
using namespace lifeguard::harness;

int main() {
  const auto opt = ReproOptions::from_env();
  bench::print_banner("Ablation — LHA-Probe with and without nack",
                      "design choice from paper §IV-A (footnote 5)", opt);
  Grid ig = interval_grid(opt);
  if (!opt.full) {
    ig.concurrency = {8, 16};
    ig.durations = {msec(8192), msec(32768)};
    ig.intervals = {msec(4)};
  }

  Table table({"Configuration", "FP Events", "FP- Events", "Msgs Sent(M)",
               "Bytes Sent(GiB)"});
  for (const bool nack : {true, false}) {
    swim::Config cfg = swim::Config::lifeguard();
    cfg.nack_enabled = nack;
    const std::string name = nack ? "Lifeguard (nack on)"
                                  : "Lifeguard (nack off)";
    const auto r = sweep_interval(cfg, ig, opt.seed, stderr_progress(name));
    table.add_row({name, fmt_int(r.fp), fmt_int(r.fpm),
                   fmt_double(static_cast<double>(r.msgs) / 1e6, 2),
                   fmt_bytes_gib(r.bytes)});
  }
  table.print();
  std::printf(
      "\nExpectation: disabling nack removes some messages but weakens the"
      "\nLHM signal at slow members (missed-nack events vanish).\n");
  return 0;
}
