// Reproduces Table VII: full Lifeguard under nine (alpha, beta) suspicion
// tunings, every metric as a percentage of the SWIM baseline. Latencies come
// from the Threshold experiment, FP counts from the Interval experiment.
#include "bench_common.h"
#include "harness/table.h"

using namespace lifeguard;
using namespace lifeguard::harness;

namespace {

Grid quick_threshold(const ReproOptions& opt) {
  Grid g = threshold_grid(opt);
  if (!opt.full) {
    g.concurrency = {8};
    g.durations = {msec(16384), msec(32768)};
    g.repetitions = std::max(2, g.repetitions);
  }
  return g;
}

Grid quick_interval(const ReproOptions& opt) {
  Grid g = interval_grid(opt);
  if (!opt.full) {
    g.concurrency = {16};
    g.durations = {msec(8192), msec(32768)};
    g.intervals = {msec(4), msec(256)};
  }
  return g;
}

struct Metrics9 {
  double med_first, med_full, p99_first, p99_full, p999_first, p999_full;
  double fp, fpm;
};

Metrics9 measure(const swim::Config& cfg, const Grid& tg, const Grid& ig,
                 std::uint64_t seed, const std::string& label) {
  const auto t = sweep_threshold(cfg, tg, seed, stderr_progress(label + " thr"));
  const auto i = sweep_interval(cfg, ig, seed, stderr_progress(label + " int"));
  return Metrics9{t.first_detect.percentile(0.50), t.full_dissem.percentile(0.50),
                  t.first_detect.percentile(0.99), t.full_dissem.percentile(0.99),
                  t.first_detect.percentile(0.999), t.full_dissem.percentile(0.999),
                  static_cast<double>(i.fp), static_cast<double>(i.fpm)};
}

}  // namespace

int main() {
  const auto opt = ReproOptions::from_env();
  bench::print_banner("Table VII — alpha/beta suspicion-timeout tuning",
                      "Dadgar et al., DSN'18, Table VII", opt);
  const Grid tg = quick_threshold(opt);
  const Grid ig = quick_interval(opt);

  const Metrics9 base = measure(swim::Config::swim_baseline(), tg, ig,
                                opt.seed, "SWIM");

  const double alphas[] = {2, 2, 2, 4, 4, 4, 5, 5, 5};
  const double betas[] = {2, 4, 6, 2, 4, 6, 2, 4, 6};

  std::vector<std::string> headers{"Metric (% of SWIM)"};
  for (int i = 0; i < 9; ++i) {
    headers.push_back("a=" + fmt_double(alphas[i], 0) + " b=" +
                      fmt_double(betas[i], 0));
  }
  Table table(std::move(headers));

  std::vector<Metrics9> cols;
  for (int i = 0; i < 9; ++i) {
    swim::Config cfg = swim::Config::lifeguard();
    cfg.suspicion_alpha = alphas[i];
    cfg.suspicion_beta = betas[i];
    cols.push_back(measure(cfg, tg, ig, opt.seed,
                           "a" + fmt_double(alphas[i], 0) + "b" +
                               fmt_double(betas[i], 0)));
  }

  auto row = [&](const char* name, double Metrics9::*field) {
    std::vector<std::string> cells{name};
    for (const auto& c : cols) cells.push_back(fmt_pct(c.*field, base.*field));
    table.add_row(std::move(cells));
  };
  row("Med First", &Metrics9::med_first);
  row("Med Full", &Metrics9::med_full);
  row("99% First", &Metrics9::p99_first);
  row("99% Full", &Metrics9::p99_full);
  row("99.9% First", &Metrics9::p999_first);
  row("99.9% Full", &Metrics9::p999_full);
  row("FP", &Metrics9::fp);
  row("FP-", &Metrics9::fpm);
  table.print();
  std::printf(
      "\nPaper (Table VII): latency scales with alpha (a=2 cuts median ~45%%);"
      "\nFP and FP- fall as alpha/beta rise; a=5 b=6 keeps SWIM-level medians"
      "\nwith the largest FP reduction.\n");
  return 0;
}
