// Shared scaffolding for the table/figure reproduction binaries.
#pragma once

#include <cstdio>
#include <string>

#include "harness/sweep.h"

namespace lifeguard::bench {

inline void print_banner(const char* what, const char* paper_ref,
                         const harness::ReproOptions& opt) {
  std::printf("== %s ==\n", what);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("Mode: %s grid (REPRO_FULL=%d), seed %llu, jobs %s%s\n\n",
              opt.full ? "full paper" : "quick", opt.full ? 1 : 0,
              static_cast<unsigned long long>(opt.seed),
              opt.jobs == 0 ? "auto" : std::to_string(opt.jobs).c_str(),
              opt.reps_override > 0 ? " (REPRO_REPS override)" : "");
}

}  // namespace lifeguard::bench
