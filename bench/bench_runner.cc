// Uniform benchmark CLI over the perf:: suites — measure, record, compare.
//
//   ./bench_runner --list
//       Enumerate suites and their cases.
//
//   ./bench_runner --suite NAME [--json FILE] [--quick]
//       Run one suite, print per-case rates, and (with --json) write the
//       Baseline artifact. --quick shrinks the workloads for CI smoke use;
//       committed BENCH_<suite>.json baselines are recorded WITHOUT --quick.
//
//   ./bench_runner --compare OLD NEW [--threshold PCT] [--report-only]
//       Diff two baseline files on each case's primary throughput. Exits 1
//       when any case regressed more than the threshold (default 10%) —
//       unless --report-only, which always exits 0 (CI's soft gate).
//
// Updating a committed baseline:
//   ./bench_runner --suite sim --json BENCH_sim.json
// then commit the file together with the change that moved the numbers (see
// docs/benchmarks.md).
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>

#include "perf/baseline.h"
#include "perf/compare.h"
#include "perf/suite.h"

using namespace lifeguard;

namespace {

[[noreturn]] void usage_error(const std::string& msg) {
  std::fprintf(stderr,
               "bench_runner: %s\n(--list shows suites; see the file header "
               "for flags)\n",
               msg.c_str());
  std::exit(2);
}

void list_suites() {
  for (const std::string& suite : perf::Suite::names()) {
    std::printf("%s\n", suite.c_str());
    for (const perf::BenchCase& c : *perf::Suite::find(suite)) {
      std::printf("  %-32s %s%s\n", c.name.c_str(), c.summary.c_str(),
                  c.heavy ? " [skipped under --quick]" : "");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool list_mode = false, quick = false, report_only = false;
  std::optional<std::string> suite, json_path, compare_old, compare_new;
  double threshold = 10.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--list") {
      list_mode = true;
    } else if (arg == "--suite") {
      suite = next();
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--compare") {
      compare_old = next();
      if (i + 1 >= argc) usage_error("--compare takes two baseline files");
      compare_new = argv[++i];
    } else if (arg == "--threshold") {
      errno = 0;
      char* end = nullptr;
      threshold = std::strtod(next(), &end);
      if (end == nullptr || *end != '\0' || errno == ERANGE ||
          threshold < 0.0 || threshold > 100.0) {
        usage_error("--threshold expects a percentage in [0, 100]");
      }
    } else if (arg == "--report-only") {
      report_only = true;
    } else {
      usage_error("unknown option " + arg);
    }
  }

  if (list_mode) {
    list_suites();
    return 0;
  }

  if (compare_old) {
    if (suite || json_path) {
      usage_error("--compare diffs two existing baselines and cannot be "
                  "combined with --suite/--json");
    }
    std::string error;
    const auto old_b = perf::load_baseline_file(*compare_old, error);
    if (!old_b) usage_error(error);
    const auto new_b = perf::load_baseline_file(*compare_new, error);
    if (!new_b) usage_error(error);
    if (old_b->suite != new_b->suite) {
      std::fprintf(stderr,
                   "bench_runner: warning: comparing suite '%s' against "
                   "'%s'\n",
                   old_b->suite.c_str(), new_b->suite.c_str());
    }
    const perf::CompareReport report =
        perf::compare(*old_b, *new_b, threshold);
    std::printf("%s", perf::format_report(report).c_str());
    if (report.has_regression()) {
      if (report_only) {
        std::printf("(--report-only: regression reported, exit 0)\n");
        return 0;
      }
      return 1;
    }
    return 0;
  }

  if (!suite) usage_error("pick a mode: --suite NAME, --compare, or --list");

  perf::SuiteOptions opt;
  opt.quick = quick;
  try {
    const perf::Baseline b = perf::Suite::run(*suite, opt, stdout);
    std::printf("\nsuite %s: %zu case(s), host '%s', build '%s'\n",
                b.suite.c_str(), b.entries.size(), b.host.c_str(),
                b.build.c_str());
    if (json_path) {
      std::string error;
      if (!perf::save_baseline_file(b, *json_path, error)) {
        std::fprintf(stderr, "bench_runner: %s\n", error.c_str());
        return 2;
      }
      std::printf("baseline written: %s\n", json_path->c_str());
    }
  } catch (const std::invalid_argument& e) {
    usage_error(e.what());
  }
  return 0;
}
