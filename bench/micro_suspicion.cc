// Microbenchmarks: suspicion-timeout math and confirmation bookkeeping.
#include <benchmark/benchmark.h>

#include "swim/suspicion.h"

namespace {

using namespace lifeguard;
using namespace lifeguard::swim;

void BM_TimeoutFormula(benchmark::State& state) {
  int c = 0;
  for (auto _ : state) {
    const Duration t = suspicion_timeout(sec(10), sec(60), 3, c % 5);
    benchmark::DoNotOptimize(t);
    ++c;
  }
}
BENCHMARK(BM_TimeoutFormula);

void BM_SuspicionMin(benchmark::State& state) {
  int n = 2;
  for (auto _ : state) {
    const Duration t = suspicion_min(5.0, n, sec(1));
    benchmark::DoNotOptimize(t);
    n = n % 6000 + 2;
  }
}
BENCHMARK(BM_SuspicionMin);

void BM_ConfirmationFlow(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Suspicion s("member", 1, "origin", sec(10), sec(60), k, TimePoint{});
    for (int i = 0; i < k + 2; ++i) {
      const bool fresh = s.confirm("from-" + std::to_string(i));
      benchmark::DoNotOptimize(fresh);
      benchmark::DoNotOptimize(s.deadline());
    }
  }
}
BENCHMARK(BM_ConfirmationFlow)->Arg(3)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
