// Reproduces Figure 1: false positives caused by CPU exhaustion. 100 nodes;
// a subset runs a starvation workload (modelled as stochastic block/run
// cycles, see DESIGN.md) for five minutes; we count FP and FP- for
// unmodified SWIM and for full Lifeguard.
#include "bench_common.h"
#include "harness/scenario.h"
#include "harness/table.h"

using namespace lifeguard;
using namespace lifeguard::harness;

int main() {
  const auto opt = ReproOptions::from_env();
  bench::print_banner("Figure 1 — False positives from CPU exhaustion",
                      "Dadgar et al., DSN'18, Fig. 1", opt);

  const std::vector<int> stressed_counts = {1, 2, 4, 8, 16, 32};
  const int reps = opt.reps_override > 0 ? opt.reps_override
                   : opt.full           ? 5
                                        : 2;

  Table table({"Stressed machines", "SWIM FP", "SWIM FP-", "Lifeguard FP",
               "Lifeguard FP-"});
  for (int s : stressed_counts) {
    std::int64_t fp[2] = {0, 0}, fpm[2] = {0, 0};
    for (int rep = 0; rep < reps; ++rep) {
      for (int cfg_idx = 0; cfg_idx < 2; ++cfg_idx) {
        // The cataloged Fig. 1 scenario, varied over stress level, config
        // and paired seeds.
        Scenario sc = *ScenarioRegistry::builtin().find("fig1-cpu-exhaustion");
        sc.config = cfg_idx == 0 ? swim::Config::swim_baseline()
                                 : swim::Config::lifeguard();
        sc.seed = run_seed(opt.seed, s, 0, 0, rep);
        sc.anomaly.victims = s;
        const RunResult r = run(sc);
        fp[cfg_idx] += r.fp_events;
        fpm[cfg_idx] += r.fp_healthy_events;
      }
      std::fprintf(stderr, "\rstressed=%d: %d/%d reps", s, rep + 1, reps);
    }
    std::fprintf(stderr, "\n");
    table.add_row({std::to_string(s), fmt_int(fp[0]), fmt_int(fpm[0]),
                   fmt_int(fp[1]), fmt_int(fpm[1])});
  }
  table.print();
  std::printf(
      "\nPaper (Fig. 1): SWIM shows false positives from a single overloaded"
      "\nmember and hundreds at healthy members from 4+; Lifeguard stays at"
      "\nor near zero until far higher stress levels.\n");
  return 0;
}
