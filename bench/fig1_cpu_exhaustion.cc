// Reproduces Figure 1: false positives caused by CPU exhaustion. 100 nodes;
// a subset runs a starvation workload (modelled as stochastic block/run
// cycles, see DESIGN.md) for five minutes; we count FP and FP- for
// unmodified SWIM and for full Lifeguard.
//
// Runs as one Campaign over a (stressed-count × configuration) grid: trials
// execute in parallel (REPRO_JOBS workers) and the config axis is seed-paired
// so SWIM and Lifeguard face the same starvation schedules.
#include <cstdint>
#include <map>
#include <utility>

#include "bench_common.h"
#include "harness/campaign.h"
#include "harness/report.h"
#include "harness/table.h"

using namespace lifeguard;
using namespace lifeguard::harness;

int main() {
  const auto opt = ReproOptions::from_env();
  bench::print_banner("Figure 1 — False positives from CPU exhaustion",
                      "Dadgar et al., DSN'18, Fig. 1", opt);

  const std::vector<int> stressed_counts = {1, 2, 4, 8, 16, 32};
  const int reps = opt.reps_override > 0 ? opt.reps_override
                   : opt.full           ? 5
                                        : 2;

  Campaign camp;
  camp.name = "fig1-cpu-exhaustion";
  camp.base = *ScenarioRegistry::builtin().find("fig1-cpu-exhaustion");
  Axis stressed = Axis::custom("stressed", {});
  for (int s : stressed_counts) {
    stressed.points.push_back({std::to_string(s),
                               static_cast<std::uint64_t>(s),
                               [s](Scenario& sc) { sc.anomaly.victims = s; }});
  }
  camp.axes = {std::move(stressed),
               Axis::configs({{"SWIM", swim::Config::swim_baseline()},
                              {"Lifeguard", swim::Config::lifeguard()}})};
  camp.repetitions = reps;
  camp.base_seed = opt.seed;
  camp.jobs = opt.jobs;

  ProgressReporter meter("fig1");
  const CampaignResult res = run(camp, {&meter});

  // Fold trials into (stressed, config) cells. Point order is stressed-major
  // with the config axis varying fastest (0 = SWIM, 1 = Lifeguard).
  std::map<std::pair<int, int>, std::int64_t> fp, fpm;
  for (const TrialResult& t : res.trials) {
    const int si = t.point_index / 2;
    const int cfg_idx = t.point_index % 2;
    fp[{si, cfg_idx}] += t.result.fp_events;
    fpm[{si, cfg_idx}] += t.result.fp_healthy_events;
  }

  Table table({"Stressed machines", "SWIM FP", "SWIM FP-", "Lifeguard FP",
               "Lifeguard FP-"});
  for (std::size_t si = 0; si < stressed_counts.size(); ++si) {
    const int i = static_cast<int>(si);
    table.add_row({std::to_string(stressed_counts[si]), fmt_int(fp[{i, 0}]),
                   fmt_int(fpm[{i, 0}]), fmt_int(fp[{i, 1}]),
                   fmt_int(fpm[{i, 1}])});
  }
  table.print();
  std::printf(
      "\nPaper (Fig. 1): SWIM shows false positives from a single overloaded"
      "\nmember and hundreds at healthy members from 4+; Lifeguard stays at"
      "\nor near zero until far higher stress levels.\n");
  return 0;
}
