// Ablation A3: sensitivity to the LHM saturation limit S (paper §VII lists
// tuning S as future work; the paper uses S = 8, i.e. up to 9x backoff).
#include "bench_common.h"
#include "harness/table.h"

using namespace lifeguard;
using namespace lifeguard::harness;

int main() {
  const auto opt = ReproOptions::from_env();
  bench::print_banner("Ablation — LHM saturation limit S",
                      "design choice from paper §IV-A / §VII (S defaults to 8)",
                      opt);
  Grid ig = interval_grid(opt);
  Grid tg = threshold_grid(opt);
  if (!opt.full) {
    ig.concurrency = {16};
    ig.durations = {msec(8192), msec(32768)};
    ig.intervals = {msec(4)};
    tg.concurrency = {8};
    tg.durations = {msec(32768)};
    tg.repetitions = 2;
  }

  Table table({"S", "Max backoff", "FP Events", "Msgs Sent(M)",
               "Median 1st Detect", "99.9th % 1st Detect"});
  for (int s : {0, 2, 4, 8, 16}) {
    swim::Config cfg = swim::Config::lifeguard();
    cfg.lhm_max = s;
    const auto fp = sweep_interval(cfg, ig, opt.seed,
                                   stderr_progress("S=" + std::to_string(s)));
    const auto lat = sweep_threshold(cfg, tg, opt.seed);
    table.add_row({std::to_string(s), std::to_string(s + 1) + "x",
                   fmt_int(fp.fp),
                   fmt_double(static_cast<double>(fp.msgs) / 1e6, 2),
                   fmt_double(lat.first_detect.percentile(0.5), 2),
                   fmt_double(lat.first_detect.percentile(0.999), 2)});
  }
  table.print();
  std::printf(
      "\nExpectation: S=0 disables probe backoff (more load, more FPs from"
      "\nslow members); very large S risks sluggish detection tails.\n");
  return 0;
}
