// Reproduces Table IV: aggregated false-positive counts over the Interval
// experiment grid, per Table I configuration, with %-of-SWIM columns.
#include "bench_common.h"
#include "harness/table.h"

using namespace lifeguard;
using namespace lifeguard::harness;

int main() {
  const auto opt = ReproOptions::from_env();
  bench::print_banner("Table IV — Aggregated false positives",
                      "Dadgar et al., DSN'18, Table IV (alpha=5, beta=6)",
                      opt);
  const Grid grid = interval_grid(opt);

  Table table({"Configuration", "FP Events", "FP- Events", "FP % SWIM",
               "FP- % SWIM"});
  std::int64_t base_fp = 0, base_fpm = 0;
  for (const auto& nc : table1_configs(5.0, 6.0)) {
    const auto r = sweep_interval(nc.config, grid, opt.seed,
                                  stderr_progress(nc.name));
    if (nc.name == "SWIM") {
      base_fp = r.fp;
      base_fpm = r.fpm;
    }
    table.add_row({nc.name, fmt_int(r.fp), fmt_int(r.fpm),
                   fmt_pct(static_cast<double>(r.fp),
                           static_cast<double>(base_fp)),
                   fmt_pct(static_cast<double>(r.fpm),
                           static_cast<double>(base_fpm))});
  }
  table.print();
  std::printf(
      "\nPaper (Table IV): SWIM FP=339002 FP-=1326; Lifeguard 1.53%% / "
      "1.89%% of SWIM;\nLHA-Suspicion is the largest single contributor.\n");
  return 0;
}
