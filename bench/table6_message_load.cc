// Reproduces Table VI: message and byte load over the Interval experiment
// grid, per configuration, with %-of-SWIM columns. Compound messages count
// as one, matching the paper's telemetry.
#include "bench_common.h"
#include "harness/table.h"

using namespace lifeguard;
using namespace lifeguard::harness;

int main() {
  const auto opt = ReproOptions::from_env();
  bench::print_banner("Table VI — Message load",
                      "Dadgar et al., DSN'18, Table VI (alpha=5, beta=6)",
                      opt);
  const Grid grid = interval_grid(opt);

  Table table({"Configuration", "Msgs Sent(M)", "Bytes Sent(GiB)",
               "Msgs % SWIM", "Bytes % SWIM"});
  std::int64_t base_msgs = 0, base_bytes = 0;
  for (const auto& nc : table1_configs(5.0, 6.0)) {
    const auto r = sweep_interval(nc.config, grid, opt.seed,
                                  stderr_progress(nc.name));
    if (nc.name == "SWIM") {
      base_msgs = r.msgs;
      base_bytes = r.bytes;
    }
    table.add_row({nc.name, fmt_double(static_cast<double>(r.msgs) / 1e6, 2),
                   fmt_bytes_gib(r.bytes),
                   fmt_pct(static_cast<double>(r.msgs),
                           static_cast<double>(base_msgs)),
                   fmt_pct(static_cast<double>(r.bytes),
                           static_cast<double>(base_bytes))});
  }
  table.print();
  std::printf(
      "\nPaper (Table VI): Lifeguard sends ~11%% more messages but ~2%% fewer"
      "\nbytes than SWIM; LHA-Suspicion adds load, LHA-Probe removes some.\n");
  return 0;
}
