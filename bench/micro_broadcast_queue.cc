// Microbenchmarks: transmit-limited broadcast queue under churn.
#include <benchmark/benchmark.h>

#include "proto/broadcast.h"

namespace {

using namespace lifeguard::proto;

std::vector<std::uint8_t> frame(int i) {
  return std::vector<std::uint8_t>(40, static_cast<std::uint8_t>(i));
}

void BM_QueueAndInvalidate(benchmark::State& state) {
  BroadcastQueue q(4);
  int i = 0;
  for (auto _ : state) {
    // Updates about a rotating set of members: each queue() invalidates the
    // previous update about the same member (the hot path during churn).
    q.queue("member-" + std::to_string(i % 64), frame(i));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueueAndInvalidate);

void BM_GetBroadcastsMtuFill(benchmark::State& state) {
  const int pending = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    BroadcastQueue q(4);
    for (int i = 0; i < pending; ++i) {
      q.queue("member-" + std::to_string(i), frame(i));
    }
    state.ResumeTiming();
    // Fill one 1400-byte packet's worth of piggyback.
    auto out = q.get_broadcasts(0, 1400, 128);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_GetBroadcastsMtuFill)->Arg(8)->Arg(64)->Arg(512);

void BM_SteadyStateDrain(benchmark::State& state) {
  // The steady cycle: a burst of updates, drained by successive packets
  // until the queue empties (retransmit limit for n=128 is 12).
  for (auto _ : state) {
    state.PauseTiming();
    BroadcastQueue q(4);
    for (int i = 0; i < 32; ++i) q.queue("m" + std::to_string(i), frame(i));
    state.ResumeTiming();
    while (!q.empty()) {
      auto out = q.get_broadcasts(0, 1400, 128);
      benchmark::DoNotOptimize(out);
    }
  }
}
BENCHMARK(BM_SteadyStateDrain);

}  // namespace

BENCHMARK_MAIN();
