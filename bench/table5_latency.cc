// Reproduces Table V: first-detection and full-dissemination latency
// (median / 99th / 99.9th percentile) for true failures, per configuration,
// from the Threshold experiment.
#include "bench_common.h"
#include "harness/table.h"

using namespace lifeguard;
using namespace lifeguard::harness;

int main() {
  const auto opt = ReproOptions::from_env();
  bench::print_banner("Table V — Detection & dissemination latency",
                      "Dadgar et al., DSN'18, Table V (alpha=5, beta=6)", opt);
  const Grid grid = threshold_grid(opt);

  Table table({"Configuration", "Median 1st Detect", "99th % 1st Detect",
               "99.9th % 1st Detect", "Median Full Dissem",
               "99th % Full Dissem", "99.9th % Full Dissem", "Samples"});
  for (const auto& nc : table1_configs(5.0, 6.0)) {
    const auto r = sweep_threshold(nc.config, grid, opt.seed,
                                   stderr_progress(nc.name));
    table.add_row({nc.name,
                   fmt_double(r.first_detect.percentile(0.50), 2),
                   fmt_double(r.first_detect.percentile(0.99), 2),
                   fmt_double(r.first_detect.percentile(0.999), 2),
                   fmt_double(r.full_dissem.percentile(0.50), 2),
                   fmt_double(r.full_dissem.percentile(0.99), 2),
                   fmt_double(r.full_dissem.percentile(0.999), 2),
                   fmt_int(static_cast<std::int64_t>(r.first_detect.count()))});
  }
  table.print();
  std::printf(
      "\nAll times in seconds from anomaly start."
      "\nPaper (Table V): medians ~12.44 s detect / ~12.90 s disseminate for"
      "\nevery configuration; Lifeguard adds ~6-9%% at the 99/99.9th "
      "percentiles.\n");
  return 0;
}
