// Microbenchmarks: simulator throughput — virtual cluster-seconds per real
// second, the quantity that bounds how big a grid the repro benches can run.
#include <benchmark/benchmark.h>

#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace {

using namespace lifeguard;

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue q;
  TimePoint now{};
  std::int64_t t = 0;
  for (auto _ : state) {
    q.push(TimePoint{(t * 7919) % 100000}, [] {});
    ++t;
    if (t % 4 == 0) q.run_next(now);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueuePushPop);

void BM_ClusterSimulation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  // The large-n tier (1024) runs fewer virtual seconds: its join storm alone
  // is O(n²) protocol work, which is exactly what the case exercises.
  const std::int64_t virtual_s = n >= 1024 ? 15 : 30;
  std::int64_t events = 0;
  for (auto _ : state) {
    sim::SimParams p;
    p.seed = 7;
    p.record_failures_only = true;  // the harness engine's configuration
    sim::Simulator sim(n, swim::Config::lifeguard(), p);
    sim.start_all();
    sim.run_for(sec(virtual_s));
    events += static_cast<std::int64_t>(sim.queue().executed());
    benchmark::DoNotOptimize(sim.datagrams_routed());
  }
  state.counters["virtual_s_per_s"] = benchmark::Counter(
      static_cast<double>(virtual_s) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ClusterSimulation)
    ->Arg(32)
    ->Arg(128)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_ClusterWithAnomalies(benchmark::State& state) {
  for (auto _ : state) {
    sim::SimParams p;
    p.seed = 9;
    sim::Simulator sim(64, swim::Config::swim_baseline(), p);
    sim.start_all();
    sim.run_for(sec(10));
    for (int v = 0; v < 8; ++v) sim.block_node(v);
    sim.run_for(sec(15));
    for (int v = 0; v < 8; ++v) sim.unblock_node(v);
    sim.run_for(sec(5));
    benchmark::DoNotOptimize(sim.datagrams_routed());
  }
  state.counters["virtual_s_per_s"] = benchmark::Counter(
      30.0 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ClusterWithAnomalies)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
