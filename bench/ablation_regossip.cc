// Ablation A1: value of re-gossiping the first K independent suspicions
// (paper §IV-B / §VII). K = 0 disables confirmation-driven decay entirely
// (timeout pinned at Max); larger K trades extra messages for faster decay.
#include "bench_common.h"
#include "harness/table.h"

using namespace lifeguard;
using namespace lifeguard::harness;

int main() {
  const auto opt = ReproOptions::from_env();
  bench::print_banner("Ablation — LHA-Suspicion re-gossip factor K",
                      "design choice from paper §IV-B (K defaults to 3)",
                      opt);
  Grid ig = interval_grid(opt);
  Grid tg = threshold_grid(opt);
  if (!opt.full) {
    ig.concurrency = {16};
    ig.durations = {msec(8192), msec(32768)};
    ig.intervals = {msec(4)};
    tg.concurrency = {8};
    tg.durations = {msec(32768)};
    tg.repetitions = 2;
  }

  Table table({"K", "FP Events", "FP- Events", "Msgs Sent(M)",
               "Median 1st Detect", "99.9th % 1st Detect"});
  for (int k : {0, 1, 3, 6}) {
    swim::Config cfg = swim::Config::lifeguard();
    cfg.suspicion_k = k;
    const auto fp = sweep_interval(cfg, ig, opt.seed,
                                   stderr_progress("K=" + std::to_string(k)));
    const auto lat = sweep_threshold(cfg, tg, opt.seed);
    table.add_row({std::to_string(k), fmt_int(fp.fp), fmt_int(fp.fpm),
                   fmt_double(static_cast<double>(fp.msgs) / 1e6, 2),
                   fmt_double(lat.first_detect.percentile(0.5), 2),
                   fmt_double(lat.first_detect.percentile(0.999), 2)});
  }
  table.print();
  std::printf(
      "\nExpectation: K=0 leaves the timeout at Max (slow detection, fewest"
      "\nFPs); K=3 recovers SWIM-level medians; larger K buys little more.\n");
  return 0;
}
