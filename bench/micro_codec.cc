// Microbenchmarks: wire codec encode/decode and compound packing.
#include <benchmark/benchmark.h>

#include "proto/wire.h"

namespace {

using namespace lifeguard;
using namespace lifeguard::proto;

void BM_EncodePing(benchmark::State& state) {
  const Ping ping{12345, "node-042", "node-117", Address{0x0a000001, 7946}};
  for (auto _ : state) {
    auto bytes = encode_datagram(ping);
    benchmark::DoNotOptimize(bytes);
  }
}
BENCHMARK(BM_EncodePing);

void BM_DecodePing(benchmark::State& state) {
  const auto bytes =
      encode_datagram(Ping{12345, "node-042", "node-117", Address{1, 7946}});
  for (auto _ : state) {
    BufReader r(bytes);
    auto msg = decode(r);
    benchmark::DoNotOptimize(msg);
  }
}
BENCHMARK(BM_DecodePing);

void BM_EncodePushPull(benchmark::State& state) {
  PushPull p;
  p.from = "node-0";
  p.from_addr = {1, 7946};
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    p.members.push_back(MemberSnapshot{
        "node-" + std::to_string(i), Address{static_cast<std::uint32_t>(i), 1},
        i, 0});
  }
  for (auto _ : state) {
    auto bytes = encode_datagram(p);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EncodePushPull)->Arg(16)->Arg(128)->Arg(1024);

void BM_DecodePushPull(benchmark::State& state) {
  PushPull p;
  p.from = "node-0";
  const auto n = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n; ++i) {
    p.members.push_back(MemberSnapshot{
        "node-" + std::to_string(i), Address{static_cast<std::uint32_t>(i), 1},
        i, 0});
  }
  const auto bytes = encode_datagram(p);
  for (auto _ : state) {
    BufReader r(bytes);
    auto msg = decode(r);
    benchmark::DoNotOptimize(msg);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DecodePushPull)->Arg(16)->Arg(128)->Arg(1024);

void BM_PackCompound(benchmark::State& state) {
  std::vector<std::vector<std::uint8_t>> frames;
  for (int i = 0; i < state.range(0); ++i) {
    frames.push_back(
        encode_datagram(Suspect{"node-" + std::to_string(i),
                                static_cast<std::uint64_t>(i), "accuser"}));
  }
  for (auto _ : state) {
    auto packed = pack_compound(frames);
    benchmark::DoNotOptimize(packed);
  }
}
BENCHMARK(BM_PackCompound)->Arg(4)->Arg(32);

void BM_UnpackCompound(benchmark::State& state) {
  std::vector<std::vector<std::uint8_t>> frames;
  for (int i = 0; i < state.range(0); ++i) {
    frames.push_back(
        encode_datagram(Suspect{"node-" + std::to_string(i),
                                static_cast<std::uint64_t>(i), "accuser"}));
  }
  const auto packed = pack_compound(frames);
  std::vector<std::span<const std::uint8_t>> out;
  for (auto _ : state) {
    const bool ok = unpack_compound(packed, out);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_UnpackCompound)->Arg(4)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
