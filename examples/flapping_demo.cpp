// The scenario that motivated Lifeguard (paper §II): overloaded members
// intermittently stall, and under plain SWIM healthy members get falsely
// declared dead — "flapping". Run the cataloged flapping scenario under SWIM
// and under Lifeguard and compare.
//
//   ./examples/flapping_demo
#include <algorithm>
#include <cstdio>

#include "harness/scenario.h"

using namespace lifeguard;
using namespace lifeguard::harness;

namespace {

struct Outcome {
  long long false_positives = 0;  // dead declarations about healthy members
  long long refutations = 0;      // "I am not dead" rebuttals (flap halves)
  long long messages = 0;
};

/// The demo workload: 4 of 64 members stall in lock-step for 16 s with 5 ms
/// of air between stalls, for two minutes (e.g. video transcoders behind one
/// oversubscribed CPU, §II). 16 s sits above SWIM's fixed suspicion timeout
/// (5·log10(64) ≈ 9 s) but below Lifeguard's starting timeout (6×that) —
/// exactly the regime the paper targets.
Scenario demo_scenario() {
  Scenario s;
  s.name = "flapping-demo";
  s.cluster_size = 64;
  s.anomaly = AnomalyPlan::cycling(4, sec(16), msec(5));
  s.run_length = sec(120);
  s.seed = 77;
  return s;
}

Outcome run_with(const swim::Config& cfg) {
  // Identical workload for both configurations: same scenario, same seed —
  // only the protocol configuration differs.
  Scenario s = demo_scenario();
  s.config = cfg;
  std::printf("--- %s ---\n", cfg.table1_name().c_str());

  const RunResult r = run(s);
  Outcome out;
  out.false_positives = r.fp_events;
  out.refutations = r.metrics.counter_value("swim.refutations");
  out.messages = r.msgs_sent;
  std::printf("  false positives about healthy members : %lld\n",
              out.false_positives);
  std::printf("  refutations (flap halves)              : %lld\n",
              out.refutations);
  std::printf("  compound messages sent                 : %lld\n\n",
              out.messages);
  return out;
}

}  // namespace

int main() {
  std::printf(
      "Identical cluster, identical anomaly schedule (seed 77):\n"
      "4 of 64 members stall for 16 s at a time with 5 ms of air between\n"
      "stalls, for two minutes.\n\n");
  const Outcome swim = run_with(swim::Config::swim_baseline());
  const Outcome lifeguard = run_with(swim::Config::lifeguard());

  if (lifeguard.false_positives < swim.false_positives) {
    const double factor =
        static_cast<double>(swim.false_positives) /
        std::max(1.0, static_cast<double>(lifeguard.false_positives));
    std::printf("Lifeguard cut false positives by %.0fx (%lld -> %lld).\n",
                factor, swim.false_positives, lifeguard.false_positives);
  } else {
    std::printf("No false-positive reduction in this run — try more seeds.\n");
  }
  return 0;
}
