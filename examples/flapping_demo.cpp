// The scenario that motivated Lifeguard (paper §II): an overloaded member
// intermittently stalls, and under plain SWIM healthy members get falsely
// declared dead — "flapping". Run the identical workload under SWIM and
// under Lifeguard and compare.
//
//   ./examples/flapping_demo
#include <cstdio>

#include "sim/anomaly.h"
#include "sim/simulator.h"

using namespace lifeguard;

namespace {

struct Outcome {
  int false_positives = 0;        // dead declarations about healthy members
  int flap_transitions = 0;       // alive->failed->alive oscillations seen
  long long messages = 0;
};

Outcome run(const swim::Config& cfg, const char* label) {
  std::printf("--- %s ---\n", cfg.table1_name().c_str());
  (void)label;
  sim::SimParams params;
  params.seed = 77;  // identical workload for both configurations
  sim::Simulator sim(64, cfg, params);
  sim.start_all();
  sim.run_for(sec(15));

  // Four members suffer intermittent stalls: 16 s blocked, 5 ms of air,
  // repeating for two minutes (e.g. video transcoders with an
  // oversubscribed CPU, §II). 16 s sits above SWIM's fixed suspicion
  // timeout (5·log10(64) ≈ 9 s) but below Lifeguard's starting timeout
  // (6×that) — exactly the regime the paper targets.
  const std::vector<int> victims{3, 11, 42, 57};
  const TimePoint start = sim.now();
  sim::schedule_interval_anomaly(sim, victims, start, sec(16), msec(5),
                                 start + sec(120));
  sim.run_until(start + sec(140));

  Outcome out;
  for (int i = 0; i < sim.size(); ++i) {
    for (const auto& e : sim.events(i).events()) {
      if (e.at < start) continue;
      const bool about_victim = e.member == "node-3" || e.member == "node-11" ||
                                e.member == "node-42" || e.member == "node-57";
      if (e.type == swim::EventType::kFailed && e.originated && !about_victim) {
        ++out.false_positives;
      }
      // A recovery event about anyone indicates one half of a flap.
      if (e.type == swim::EventType::kAlive) ++out.flap_transitions;
    }
  }
  out.messages = sim.aggregate_metrics().counter_value("net.msgs_sent");
  std::printf("  false positives about healthy members : %d\n",
              out.false_positives);
  std::printf("  alive<->failed flap transitions        : %d\n",
              out.flap_transitions);
  std::printf("  compound messages sent                 : %lld\n\n",
              out.messages);
  return out;
}

}  // namespace

int main() {
  std::printf(
      "Identical cluster, identical anomaly schedule (seed 77):\n"
      "4 of 64 members stall for 20 s at a time with 5 ms of air between\n"
      "stalls, for two minutes.\n\n");
  const Outcome swim = run(swim::Config::swim_baseline(), "SWIM");
  const Outcome lifeguard = run(swim::Config::lifeguard(), "Lifeguard");

  if (lifeguard.false_positives < swim.false_positives) {
    const double factor =
        swim.false_positives /
        std::max(1.0, static_cast<double>(lifeguard.false_positives));
    std::printf("Lifeguard cut false positives by %.0fx (%d -> %d).\n", factor,
                swim.false_positives, lifeguard.false_positives);
  } else {
    std::printf("No false-positive reduction in this run — try more seeds.\n");
  }
  return 0;
}
