// Live cluster over real UDP sockets on localhost: the same swim::Node code
// that runs in the simulator, driven by net::UdpRuntime.
//
//   ./examples/udp_cluster [num_nodes]      (default 5)
//
// Starts N agents on ephemeral loopback ports, joins them through the first
// agent, prints each agent's view, then kills one agent and shows the
// failure being detected and disseminated — in real time (accelerated
// protocol timers keep the demo short).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/udp_runtime.h"
#include "swim/node.h"

using namespace lifeguard;

namespace {

// Thread-safe listener: UdpRuntime delivers events on each node's loop
// thread; the demo prints them from wherever they land.
class PrintingListener : public swim::EventListener {
 public:
  void on_event(const swim::MemberEvent& e) override {
    static std::mutex mu;
    const std::lock_guard<std::mutex> lock(mu);
    std::printf("  event: %-8s reports %-8s %s (inc %llu)\n",
                e.reporter.c_str(), e.member.c_str(),
                swim::event_type_name(e.type),
                static_cast<unsigned long long>(e.incarnation));
  }
};

struct Agent {
  std::unique_ptr<net::UdpRuntime> rt;
  std::unique_ptr<PrintingListener> listener;
  std::unique_ptr<swim::Node> node;

  Agent(const std::string& name, std::uint64_t seed, const swim::Config& cfg) {
    rt = std::make_unique<net::UdpRuntime>(0, seed);
    listener = std::make_unique<PrintingListener>();
    node = std::make_unique<swim::Node>(name, rt->local_address(), cfg, *rt,
                                        listener.get());
    rt->start(node.get());
    rt->post([this] { node->start(); });
  }
  ~Agent() {
    if (!rt) return;
    rt->post([this] { node->stop(); });
    rt->shutdown();
  }

  int active() {
    std::atomic<int> result{-1};
    rt->post([&] { result = node->members().num_active(); });
    while (result < 0) std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return result;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 5;
  if (n < 2 || n > 64) {
    std::fprintf(stderr, "usage: %s [2..64]\n", argv[0]);
    return 1;
  }

  // Accelerated timers: 10x faster than production so the demo takes
  // seconds, not minutes.
  swim::Config cfg = swim::Config::lifeguard();
  cfg.probe_interval = msec(100);
  cfg.probe_timeout = msec(50);
  cfg.gossip_interval = msec(40);
  cfg.push_pull_interval = sec(3);
  cfg.reconnect_interval = sec(2);

  std::printf("Starting %d agents on loopback UDP...\n", n);
  std::vector<std::unique_ptr<Agent>> agents;
  for (int i = 0; i < n; ++i) {
    agents.push_back(std::make_unique<Agent>("agent-" + std::to_string(i),
                                             1000 + static_cast<std::uint64_t>(i),
                                             cfg));
    std::printf("  agent-%d on %s\n", i,
                agents.back()->rt->local_address().to_string().c_str());
  }

  const Address seed_addr = agents[0]->rt->local_address();
  for (int i = 1; i < n; ++i) {
    Agent* a = agents[static_cast<std::size_t>(i)].get();
    a->rt->post([a, seed_addr] { a->node->join({seed_addr}); });
  }

  std::printf("\nWaiting for convergence...\n");
  for (int tries = 0; tries < 100; ++tries) {
    bool all = true;
    for (auto& a : agents) all = all && a->active() == n;
    if (all) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  for (int i = 0; i < n; ++i) {
    std::printf("  agent-%d sees %d active members\n", i,
                agents[static_cast<std::size_t>(i)]->active());
  }

  std::printf("\nKilling agent-%d (hard stop, no leave)...\n", n - 1);
  agents.back().reset();
  agents.pop_back();

  std::printf("Watching the survivors detect the failure...\n");
  for (int tries = 0; tries < 200; ++tries) {
    bool all = true;
    for (auto& a : agents) all = all && a->active() == n - 1;
    if (all) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  for (std::size_t i = 0; i < agents.size(); ++i) {
    std::printf("  agent-%zu sees %d active members\n", i,
                agents[i]->active());
  }
  std::printf("\nDone. (LHM at agent-0: %dx multiplier)\n",
              [&] {
                std::atomic<int> v{-1};
                agents[0]->rt->post([&] {
                  v = agents[0]->node->local_health().multiplier();
                });
                while (v < 0) {
                  std::this_thread::sleep_for(std::chrono::milliseconds(2));
                }
                return static_cast<int>(v);
              }());
  return 0;
}
