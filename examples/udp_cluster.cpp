// Live cluster over real UDP sockets on localhost: the same swim::Node code
// that runs in the simulator, driven by net::UdpRuntime — all assembled by
// the one ClusterBuilder facade (backend kUdp).
//
//   ./examples/udp_cluster [num_nodes]      (default 5)
//
// Starts N agents on ephemeral loopback ports, joins them through the first
// agent, prints each agent's view, then kills one agent and shows the
// failure being detected and disseminated — in real time (accelerated
// protocol timers keep the demo short).
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "cluster/cluster.h"

using namespace lifeguard;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 5;
  if (n < 2 || n > 64) {
    std::fprintf(stderr, "usage: %s [2..64]\n", argv[0]);
    return 1;
  }

  // Accelerated timers: 10x faster than production so the demo takes
  // seconds, not minutes.
  swim::Config cfg = swim::Config::lifeguard();
  cfg.probe_interval = msec(100);
  cfg.probe_timeout = msec(50);
  cfg.gossip_interval = msec(40);
  cfg.push_pull_interval = sec(3);
  cfg.reconnect_interval = sec(2);

  std::printf("Starting %d agents on loopback UDP...\n", n);
  auto cluster = ClusterBuilder()
                     .size(n)
                     .config(cfg)
                     .seed(1000)
                     .backend(Cluster::Backend::kUdp)
                     .build();
  for (int i = 0; i < n; ++i) {
    std::printf("  %s on %s\n", cluster->node(i).name().c_str(),
                cluster->node(i).address().to_string().c_str());
  }

  // Events arrive on each node's runtime loop thread; serialize the prints.
  auto sub = cluster->subscribe([](const swim::MemberEvent& e) {
    static std::mutex mu;
    const std::lock_guard<std::mutex> lock(mu);
    std::printf("  event: %-8s reports %-8s %s (inc %llu)\n",
                e.reporter.c_str(), e.member.c_str(),
                swim::event_type_name(e.type),
                static_cast<unsigned long long>(e.incarnation));
  });

  std::printf("\nWaiting for convergence...\n");
  cluster->start();
  cluster->await_convergence(sec(10));
  for (int i = 0; i < n; ++i) {
    std::printf("  node-%d sees %d active members\n", i,
                cluster->active_members(i));
  }

  std::printf("\nStopping node-%d (hard stop, no leave)...\n", n - 1);
  cluster->stop_node(n - 1);

  std::printf("Watching the survivors detect the failure...\n");
  for (int tries = 0; tries < 200; ++tries) {
    bool all = true;
    for (int i = 0; i < n - 1; ++i) {
      all = all && cluster->active_members(i) == n - 1;
    }
    if (all) break;
    cluster->run_for(msec(100));
  }
  for (int i = 0; i < n - 1; ++i) {
    std::printf("  node-%d sees %d active members\n", i,
                cluster->active_members(i));
  }
  std::printf("\nDone.\n");
  cluster->stop();
  return 0;
}
