// Quickstart: run a simulated 16-member Lifeguard cluster, watch it
// converge, crash a member and watch the failure detector at work.
//
//   ./examples/quickstart
//
// This is the five-minute tour of the public API: ClusterBuilder assembles a
// cluster of swim::Node agents over the simulator; subscribe() streams every
// membership event through a RAII subscription.
#include <cstdio>

#include "cluster/cluster.h"

using namespace lifeguard;

namespace {

void print_event(const swim::MemberEvent& e) {
  std::printf("  [%6.2fs] %-8s saw %-8s %-7s (incarnation %llu%s)\n",
              e.at.seconds(), e.reporter.c_str(), e.member.c_str(),
              swim::event_type_name(e.type),
              static_cast<unsigned long long>(e.incarnation),
              e.originated ? ", originated here" : "");
}

}  // namespace

int main() {
  // 1. Build a 16-node cluster running full Lifeguard (all three components:
  //    LHA-Probe, LHA-Suspicion, Buddy System).
  auto cluster = ClusterBuilder()
                     .size(16)
                     .config(swim::Config::lifeguard())
                     .seed(2024)
                     .build();

  std::printf("Starting 16 agents; every agent joins via node-0...\n");
  cluster->start();
  cluster->run_for(sec(10));
  std::printf("Converged: %s (every view shows 16 active members)\n\n",
              cluster->converged() ? "yes" : "no");

  // 2. Crash a member and watch detection + dissemination, live, at node-0.
  //    The subscription detaches automatically when `sub` goes out of scope.
  {
    auto sub = cluster->subscribe([](const swim::MemberEvent& e) {
      if (e.reporter == "node-0") print_event(e);
    });
    std::printf("Crashing node-5; events observed at node-0:\n");
    cluster->simulator()->crash_node(5);
    cluster->run_for(sec(30));
  }

  // 3. Inspect a node's view and its local health.
  const auto& node0 = cluster->node(0);
  std::printf("\nnode-0 now sees %d active members; its LHM score is %d "
              "(multiplier %dx)\n",
              node0.members().num_active(), node0.local_health().score(),
              node0.local_health().multiplier());

  // 4. Graceful leave, for contrast: no failure event is generated.
  std::printf("\nnode-7 leaves gracefully; events observed at node-0:\n");
  auto sub = cluster->subscribe([](const swim::MemberEvent& e) {
    if (e.reporter == "node-0") print_event(e);
  });
  cluster->node(7).leave();
  cluster->run_for(sec(5));

  const Metrics m = cluster->aggregate_metrics();
  std::printf("\nCluster totals: %lld compound messages, %lld bytes, "
              "%lld refutations\n",
              static_cast<long long>(m.counter_value("net.msgs_sent")),
              static_cast<long long>(m.counter_value("net.bytes_sent")),
              static_cast<long long>(m.counter_value("swim.refutations")));
  return 0;
}
