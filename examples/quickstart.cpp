// Quickstart: run a simulated 16-member Lifeguard cluster, watch it
// converge, crash a member and watch the failure detector at work.
//
//   ./examples/quickstart
//
// This is the five-minute tour of the public API: Simulator owns a cluster
// of swim::Node agents; RecordingListener captures every membership event.
#include <cstdio>

#include "sim/simulator.h"

using namespace lifeguard;

namespace {

void dump_events(sim::Simulator& sim, int node_index, TimePoint since) {
  for (const auto& e : sim.events(node_index).events()) {
    if (e.at < since) continue;
    std::printf("  [%6.2fs] %-8s saw %-8s %-7s (incarnation %llu%s)\n",
                e.at.seconds(), e.reporter.c_str(), e.member.c_str(),
                swim::event_type_name(e.type),
                static_cast<unsigned long long>(e.incarnation),
                e.originated ? ", originated here" : "");
  }
}

}  // namespace

int main() {
  // 1. Build a 16-node cluster running full Lifeguard (all three components:
  //    LHA-Probe, LHA-Suspicion, Buddy System).
  sim::SimParams params;
  params.seed = 2024;
  sim::Simulator sim(16, swim::Config::lifeguard(), params);

  std::printf("Starting 16 agents; every agent joins via node-0...\n");
  sim.start_all();
  sim.run_for(sec(10));
  std::printf("Converged: %s (every view shows 16 active members)\n\n",
              sim.converged(16) ? "yes" : "no");

  // 2. Crash a member and watch detection + dissemination.
  std::printf("Crashing node-5 at t=%.2fs...\n", sim.now().seconds());
  const TimePoint crash_at = sim.now();
  sim.crash_node(5);
  sim.run_for(sec(30));

  std::printf("Events observed at node-0 since the crash:\n");
  dump_events(sim, 0, crash_at);

  // 3. Inspect a node's view and its local health.
  const auto& node0 = sim.node(0);
  std::printf("\nnode-0 now sees %d active members; its LHM score is %d "
              "(multiplier %dx)\n",
              node0.members().num_active(), node0.local_health().score(),
              node0.local_health().multiplier());

  // 4. Graceful leave, for contrast: no failure event is generated.
  std::printf("\nnode-7 leaves gracefully...\n");
  const TimePoint leave_at = sim.now();
  sim.node(7).leave();
  sim.run_for(sec(5));
  dump_events(sim, 0, leave_at);

  const Metrics m = sim.aggregate_metrics();
  std::printf("\nCluster totals: %lld compound messages, %lld bytes, "
              "%lld refutations\n",
              static_cast<long long>(m.counter_value("net.msgs_sent")),
              static_cast<long long>(m.counter_value("net.bytes_sent")),
              static_cast<long long>(m.counter_value("swim.refutations")));
  return 0;
}
