// live_node — one live-tier cluster member, run as its own OS process.
//
// Spawned by live::NodeProcess (never by hand, though it works): hosts one
// swim::Node on a net::UdpRuntime with a NetemFilter installed, announces
// readiness with HELLO on the control channel (fd --control-fd), then obeys
// the parent's line commands (START / FAULT / STATS / STOP — see
// src/live/control.h) while streaming every membership event it observes as
// EV lines and a TICK watermark every --tick-ms.
//
// Threading: the protocol runs on the runtime's loop thread (events and
// TICKs are written from there); the main thread blocks on the control
// channel and posts each command onto the loop. LineWriter serializes the
// two writers. EOF on the control channel means the parent is gone — exit
// immediately (PR_SET_PDEATHSIG already covers the SIGKILL case).
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "check/events.h"
#include "check/trace.h"
#include "live/control.h"
#include "net/fault_filter.h"
#include "net/udp_runtime.h"
#include "obs/catalog.h"
#include "swim/node.h"

using namespace lifeguard;

namespace {

check::TraceEventKind member_event_kind(swim::EventType t) {
  switch (t) {
    case swim::EventType::kJoin:
      return check::TraceEventKind::kJoin;
    case swim::EventType::kAlive:
      return check::TraceEventKind::kAlive;
    case swim::EventType::kSuspect:
      return check::TraceEventKind::kSuspect;
    case swim::EventType::kFailed:
      return check::TraceEventKind::kFailed;
    case swim::EventType::kLeft:
      return check::TraceEventKind::kLeft;
  }
  return check::TraceEventKind::kJoin;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --index N --port P --seed S --epoch-ns NS "
               "--control-fd FD --tick-ms MS [--metrics-interval-us US] "
               "--config SPEC\n",
               argv0);
  return 2;
}

/// Loop-thread telemetry self-sampler: the per-node counterpart of the sim
/// tier's obs::Sampler. Emits one kMetricSample EV line per catalog metric
/// each interval, node = this worker's index, so the parent's merge carries
/// the same series schema across backends (sim-only metrics are skipped).
class SelfSampler {
 public:
  SelfSampler(int index, swim::Node& node, live::LineWriter& writer)
      : index_(index), node_(node), writer_(writer) {}

  void sample(TimePoint now) {
    const double dt = prev_at_.us > 0 ? (now - prev_at_).seconds() : 0.0;
    auto rate = [dt](double cur, double& prev) {
      const double d = cur - prev;
      prev = cur;
      return (dt > 0 && d > 0) ? d / dt : 0.0;
    };

    double suspect = 0, dead = 0;
    for (const swim::Member* m : node_.members().all()) {
      if (m->state == swim::MemberState::kSuspect) suspect += 1;
      if (m->state == swim::MemberState::kDead) dead += 1;
    }
    const Metrics& m = node_.metrics();
    double rtt_count = 0, rtt_sum = 0;
    if (const auto it = m.histograms().find("probe.rtt_us");
        it != m.histograms().end()) {
      rtt_count = static_cast<double>(it->second.count());
      rtt_sum = it->second.sum();
    }
    const double d_count = rtt_count - prev_rtt_count_;
    const double d_sum = rtt_sum - prev_rtt_sum_;
    prev_rtt_count_ = rtt_count;
    prev_rtt_sum_ = rtt_sum;

    const double lhm = static_cast<double>(node_.local_health().score());
    const double pending = static_cast<double>(node_.pending_broadcasts());
    const double msgs =
        static_cast<double>(m.counter_value("net.msgs_sent"));

    emit(now, obs::Metric::kMembersActive,
         static_cast<double>(node_.members().num_active()));
    emit(now, obs::Metric::kMembersSuspect, suspect);
    emit(now, obs::Metric::kMembersDead, dead);
    emit(now, obs::Metric::kLhmMean, lhm);
    emit(now, obs::Metric::kLhmMax, lhm);
    emit(now, obs::Metric::kProbeRttMeanUs, d_count > 0 ? d_sum / d_count : 0);
    emit(now, obs::Metric::kProbeNackRate,
         rate(static_cast<double>(m.counter_value("probe.nack_received")),
              prev_nacks_));
    emit(now, obs::Metric::kProbeFailRate,
         rate(static_cast<double>(m.counter_value("probe.failed")),
              prev_fails_));
    emit(now, obs::Metric::kNetMsgsRate, rate(msgs, prev_msgs_));
    emit(now, obs::Metric::kNetMsgsTotal, msgs);
    emit(now, obs::Metric::kNetBytesTotal,
         static_cast<double>(m.counter_value("net.bytes_sent")));
    emit(now, obs::Metric::kGossipPendingMean, pending);
    emit(now, obs::Metric::kGossipPendingMax, pending);
    emit(now, obs::Metric::kGossipTransmitsRate,
         rate(static_cast<double>(node_.broadcasts().total_transmits()),
              prev_transmits_));
    prev_at_ = now;
  }

 private:
  void emit(TimePoint at, obs::Metric metric, double value) {
    check::TraceEvent e;
    e.at = at;
    e.kind = check::TraceEventKind::kMetricSample;
    e.node = index_;
    e.peer = static_cast<int>(metric);
    e.value = value;
    writer_.write_line(live::event_msg_line(e));
  }

  int index_;
  swim::Node& node_;
  live::LineWriter& writer_;
  TimePoint prev_at_{};
  double prev_nacks_ = 0, prev_fails_ = 0, prev_msgs_ = 0;
  double prev_transmits_ = 0, prev_rtt_count_ = 0, prev_rtt_sum_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  int index = -1;
  long port = 0;
  unsigned long long seed = 1;
  long long epoch_ns = 0;
  int control_fd = -1;
  long tick_ms = 200;
  long long metrics_interval_us = 0;
  std::string config_spec;

  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string_view flag = argv[i];
    const char* val = argv[i + 1];
    if (flag == "--index") index = std::atoi(val);
    else if (flag == "--port") port = std::atol(val);
    else if (flag == "--seed") seed = std::strtoull(val, nullptr, 10);
    else if (flag == "--epoch-ns") epoch_ns = std::atoll(val);
    else if (flag == "--control-fd") control_fd = std::atoi(val);
    else if (flag == "--tick-ms") tick_ms = std::atol(val);
    else if (flag == "--metrics-interval-us") metrics_interval_us = std::atoll(val);
    else if (flag == "--config") config_spec = val;
    else return usage(argv[0]);
  }
  if (index < 0 || control_fd < 0 || port < 0 || port > 65535 ||
      tick_ms <= 0) {
    return usage(argv[0]);
  }

  std::string error;
  const auto config = live::decode_config(config_spec, error);
  if (!config) {
    std::fprintf(stderr, "live_node: %s\n", error.c_str());
    return 2;
  }

  // A dying parent closes the socketpair; treat the resulting EPIPE as EOF,
  // not a fatal signal.
  ::signal(SIGPIPE, SIG_IGN);

  net::UdpRuntime rt(static_cast<std::uint16_t>(port), seed);
  rt.set_epoch_ns(epoch_ns);
  net::NetemFilter filter;
  rt.set_fault_filter(&filter);

  const std::string name = "node-" + std::to_string(index);
  swim::Node node(name, rt.local_address(), *config, rt);
  live::LineWriter writer(control_fd);

  // Every membership transition this node observes goes up as an EV line,
  // straight off the loop thread the EventBus fires on.
  auto sub = node.subscribe([&writer](const swim::MemberEvent& me) {
    check::TraceEvent e;
    e.at = me.at;
    e.kind = member_event_kind(me.type);
    e.node = check::node_index_of(me.reporter);
    e.peer = check::node_index_of(me.member);
    e.origin = check::node_index_of(me.origin);
    e.incarnation = me.incarnation;
    e.originated = me.originated;
    writer.write_line(live::event_msg_line(e));
  });

  rt.start(&node);

  // TICK watermark: a periodic promise that nothing earlier will be
  // emitted, so the parent's merge advances even when this node is quiet.
  const Duration tick{tick_ms * 1000};
  std::function<void()> tick_fn;
  tick_fn = [&] {
    writer.write_line(live::tick_line(rt.now()));
    rt.schedule(tick, [&] { tick_fn(); });
  };
  rt.post([&] { rt.schedule(tick, [&] { tick_fn(); }); });

  // Telemetry self-sampling, same loop-thread pattern as the TICK watermark.
  // Samples are EV lines, so they ride the merged trace like any other event
  // (and the parent's TraceRecorder captures them for offline analysis).
  SelfSampler sampler(index, node, writer);
  std::function<void()> sample_fn;
  if (metrics_interval_us > 0) {
    const Duration metrics_interval{metrics_interval_us};
    sample_fn = [&, metrics_interval] {
      sampler.sample(rt.now());
      rt.schedule(metrics_interval, [&] { sample_fn(); });
    };
    rt.post([&, metrics_interval] {
      rt.schedule(metrics_interval, [&] { sample_fn(); });
    });
  }

  writer.write_line(
      live::hello_line(index, ::getpid(), rt.local_address().port));

  std::atomic<bool> stopping{false};

  // A join is one fire-and-forget push-pull, and a node drops every packet
  // until its own START runs — so a joiner that races the seed's START (real
  // schedulers allow it) would stay isolated forever: nobody learns it, and
  // its anti-entropy has no members to pick from. Re-send the join until a
  // second member shows up. Loop-thread state, like tick_fn.
  std::optional<Address> join_seed;
  std::function<void()> join_fn;
  join_fn = [&] {
    if (stopping.load() || !join_seed) return;
    if (node.members().num_active() > 1) return;
    node.join({*join_seed});
    rt.schedule(msec(500), [&] { join_fn(); });
  };

  // Main thread: the blocking control-command loop.
  live::LineBuffer lines;
  char buf[8192];
  while (true) {
    const ssize_t n = ::read(control_fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // parent gone
    lines.append(buf, static_cast<std::size_t>(n));
    while (auto line = lines.next_line()) {
      const auto cmd = live::parse_command(*line, error);
      if (!cmd) {
        std::fprintf(stderr, "live_node: %s\n", error.c_str());
        continue;
      }
      switch (cmd->kind) {
        case live::Command::Kind::kStart: {
          const std::optional<Address> join = cmd->join;
          rt.post([&, join] {
            node.start();
            if (join) {
              join_seed = *join;
              join_fn();
            }
          });
          break;
        }
        case live::Command::Kind::kFaultAdd: {
          const int token = cmd->token;
          const net::NetemFilter::Overlay overlay = cmd->overlay;
          rt.post([&filter, token, overlay] {
            filter.add_overlay(token, overlay);
          });
          break;
        }
        case live::Command::Kind::kFaultPart: {
          const int token = cmd->token;
          std::vector<Address> peers = cmd->peers;
          rt.post([&filter, token, peers = std::move(peers)]() mutable {
            filter.add_block_set(token, std::move(peers));
          });
          break;
        }
        case live::Command::Kind::kFaultDel: {
          const int token = cmd->token;
          rt.post([&filter, token] { filter.remove(token); });
          break;
        }
        case live::Command::Kind::kStats:
          rt.post([&node, &writer] {
            live::WorkerStats s;
            const Metrics& m = node.metrics();
            s.msgs_sent = static_cast<std::uint64_t>(
                m.counter_value("net.msgs_sent"));
            s.bytes_sent = static_cast<std::uint64_t>(
                m.counter_value("net.bytes_sent"));
            s.active = node.members().num_active();
            writer.write_line(live::stats_line(s));
          });
          break;
        case live::Command::Kind::kStop:
          stopping.store(true);
          break;
      }
      if (stopping.load()) break;
    }
    if (stopping.load()) break;
  }

  rt.post([&node] { node.stop(); });
  rt.shutdown();
  if (stopping.load()) writer.write_line(live::bye_line());
  return 0;
}
