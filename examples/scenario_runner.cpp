// Run any scenario from the built-in catalog, or compose one from flags,
// without writing code.
//
//   ./examples/scenario_runner --list [--json | --markdown]
//       Enumerate the registered scenarios (paper figures/tables, the
//       partition / flapping / churn kinds, the composed fault timelines
//       and the big-* large-cluster tier). --json emits a machine-readable
//       catalog: name, paper ref, description, cluster size and the
//       fault-timeline summary. --markdown emits the docs/scenarios.md
//       reference page (regenerate with tools/update-scenario-docs.sh; CI
//       fails when the committed page is stale).
//
//   ./examples/scenario_runner --scenario NAME [overrides]
//       Run a cataloged scenario; any flag below overrides that field.
//
//   ./examples/scenario_runner [flags]
//       Compose and run an ad-hoc scenario:
//     --nodes N          cluster size               (default 64)
//     --config NAME      swim|lha-probe|lha-suspicion|buddy|lifeguard
//                                                   (default lifeguard)
//     --anomaly KIND     none|threshold|interval|stress|partition|flapping|
//                        churn                      (default interval)
//     --victims C        anomaly set size            (default 8)
//     --duration MS      anomaly duration D in ms    (default 16384)
//     --interval MS      recovery interval I in ms   (default 4)
//     --length S         observation length, seconds (default 120)
//     --quiesce S        settling time, seconds      (default 15)
//     --alpha A --beta B suspicion tuning            (default 5 / 6)
//     --seed S           RNG seed                    (default 1)
//     --membership NAME  membership backend: swim | central[:miss=N] |
//                        static                      (default swim)
//
//   ./examples/scenario_runner --fault SPEC [--fault SPEC]... [flags]
//       Compose a fault timeline instead of a single anomaly; each SPEC is
//       KIND@AT:DUR[,key=val]... (see fault/fault.h for the grammar), e.g.
//         --fault stress@0s:60s,victims=2 --fault partition@15s:20s,victims=5
//         --fault loss@0s:90s,pct=25,egress=0.3,ingress=0.1
//       --fault replaces the --anomaly/--victims/--duration/--interval
//       single-slot flags (mixing them is rejected).
//
//   ./examples/scenario_runner --check [flags]
//       Evaluate the built-in protocol invariant suite (src/check) live
//       against the run: incarnation monotonicity, refutation rules,
//       suspicion-timeout bounds, convergence, gossip retransmit bounds,
//       crash silence and partition containment. Any violation prints the
//       verdicts, writes a replayable trace (to --trace FILE or
//       <scenario>-violation.trace.jsonl) and exits nonzero.
//       --suspicion-cap MS overrides the suspicion-bounds upper bound —
//       setting it below the protocol's floor plants a violation, the
//       quickest way to see the verdict/trace/shrink tooling end to end.
//
//   ./examples/scenario_runner --trace FILE [flags]
//       Record the run's merged event stream (membership transitions +
//       simulator fault events) to FILE as a compact JSONL trace.
//
//   ./examples/scenario_runner --replay FILE
//       Rebuild the scenario a trace describes, re-execute it, and verify
//       the replayed stream matches the recording bit for bit; exits
//       nonzero on divergence. With --metrics-out DIR, the metric samples
//       recorded in the trace are extracted and exported offline instead —
//       no re-execution.
//
//   ./examples/scenario_runner --metrics-out DIR [--metrics-interval MS]
//                              [--spans] [flags]
//       Telemetry (src/obs): sample the cluster every MS of virtual time
//       (default 500 ms when --metrics-out is given) and write DIR/
//       series.jsonl (one sample per line; schema in docs/observability.md)
//       plus DIR/metrics.prom (Prometheus text exposition of the final
//       values). In campaign mode the per-trial series fold into
//       per-(time, metric) percentile bands: DIR/bands.jsonl and
//       DIR/bands.csv. --spans additionally records probe-round span events
//       (probe-start/ack/indirect/fail/nack) into --trace recordings.
//
//   ./examples/scenario_runner --backend live [flags]
//       Execute the scenario on the live tier (src/live) instead of the
//       simulator: every member is a real OS process speaking real UDP on
//       loopback, faults are applied with signals and the userspace netem
//       shim, and the same invariants check the merged live event stream.
//       --backend sim (the default) picks the simulator. Extra live flags:
//     --timeout S        wall-clock watchdog: on expiry every worker is
//                        SIGKILLed and the runner exits 5 (no orphans)
//     --live-logs DIR    write each worker's stderr to DIR/node-N.log
//       --campaign and --replay are simulator-only (they depend on
//       bit-identical determinism a wall clock cannot provide).
//
//   ./examples/scenario_runner --campaign [--reps N] [--jobs N]
//                              [--json FILE] [--csv FILE] [flags]
//       Run the composed scenario as a Campaign: N repetitions with
//       independently derived seeds, executed on a worker pool (--jobs 0 =
//       one worker per hardware thread), aggregated with Student-t 95%
//       confidence intervals. --json / --csv stream per-trial and aggregate
//       artifacts (JSON-Lines / CSV) that are byte-identical at every --jobs
//       level.
//
//   ./examples/scenario_runner --scenario-file FILE [flags]
//       Run a scenario loaded from a versioned JSON file (the committed
//       scenarios/*.json format; see docs/scenario-files.md). A first-class
//       base like --scenario: every override flag, both backends, --check,
//       --trace and --campaign compose with it. Malformed files are
//       rejected with a message naming the offending key/value.
//
//   ./examples/scenario_runner --export-scenarios DIR
//       Write every registry scenario to DIR/<name>.json (the committed
//       scenarios/ tree; CI re-exports and fails when it is stale).
//
//   ./examples/scenario_runner --validate-scenarios PATH
//       Strictly validate one scenario file, or every *.json under a
//       directory (scenarios/baselines.json validates as a baselines
//       document). Exits 2 listing every defect.
//
//   ./examples/scenario_runner --fuzz N [--fuzz-seed S] [--fuzz-out DIR]
//                              [--fuzz-jobs K] [flags]
//       Coverage-guided fault-timeline fuzzing (src/fuzz): N trials of
//       mutated fault timelines run against the composed base scenario
//       (cluster shape, config, membership and check tolerances compose
//       as usual; the anomaly/timeline slots are replaced per candidate
//       and the invariant suite is force-enabled). Every violation is
//       auto-shrunk (check::shrink) and written to DIR as a committed-
//       format reproducer scenario plus a baselines.json entry; the
//       corpus of coverage-extending timelines and a coverage.json report
//       land there too. The whole run — corpus, findings, every emitted
//       byte — is bit-reproducible for a given --fuzz-seed at every
//       --fuzz-jobs level. Exits 3 when the budget found violations.
//       See docs/fuzzing.md for the coverage signal and triage workflow.
//
//   ./examples/scenario_runner --record-baselines FILE [--include-big]
//                              [--jobs N]
//       Run the registry (non-big tier by default) and record per-scenario
//       metric bands to FILE — the scenarios/baselines.json artifact; see
//       tools/record-baselines.sh and docs/scenario-files.md for the band
//       policy.
//
//   ./examples/scenario_runner --gate FILE [run flags]
//       Run the composed scenario (simulator, single-run modes only) and
//       gate its metrics against the baselines in FILE: any out-of-band
//       metric prints a per-metric diff and exits 6.
//
//   ./examples/scenario_runner --gate-registry FILE [--include-big]
//                              [--jobs N]
//       Gate the whole registry tier against FILE in one process — the CI
//       behavioral-regression job. Prints one verdict per scenario and the
//       per-metric diff of every failure; exits 6 when any scenario lands
//       out of band.
//
// Prints the paper's metrics for the single run: FP, FP-, detection and
// dissemination latencies, message load. Malformed or out-of-range flag
// values are rejected with a message naming the flag and the accepted range.
//
// Exit codes: 0 success, 2 usage / malformed input, 3 invariant violations,
// 4 replay divergence, 5 live-run watchdog timeout, 6 baseline gate
// failure.
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <optional>
#include <string>
#include <thread>

#include "check/replay.h"
#include "check/spec.h"
#include "check/trace.h"
#include "fault/fault.h"
#include "fuzz/engine.h"
#include "harness/campaign.h"
#include "harness/gate.h"
#include "harness/report.h"
#include "harness/scenario.h"
#include "harness/scenariofile.h"
#include "harness/stats.h"
#include "harness/table.h"
#include "live/process.h"
#include "live/runner.h"
#include "membership/backend.h"
#include "net/udp_runtime.h"
#include "obs/export.h"

using namespace lifeguard;
using namespace lifeguard::harness;

namespace {

[[noreturn]] void usage_error(const std::string& msg) {
  std::fprintf(stderr, "scenario_runner: %s\n(run with --list to see the "
               "catalog; see the file header for flags)\n",
               msg.c_str());
  std::exit(2);
}

/// Strict integer flag parser: the whole value must be a decimal number
/// inside [lo, hi]; anything else aborts with a message naming the flag.
std::int64_t parse_int(const std::string& flag, const char* text,
                       std::int64_t lo, std::int64_t hi) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') {
    usage_error(flag + " expects an integer, got '" + text + "'");
  }
  if (errno == ERANGE || v < lo || v > hi) {
    usage_error(flag + " value " + text + " is out of range [" +
                std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return v;
}

/// Full uint64 range (seeds): strict, but no [lo, hi] window.
std::uint64_t parse_u64(const std::string& flag, const char* text) {
  errno = 0;
  char* end = nullptr;
  if (text[0] == '-') {
    usage_error(flag + " expects a non-negative integer, got '" +
                std::string(text) + "'");
  }
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    usage_error(flag + " expects an integer, got '" + std::string(text) + "'");
  }
  if (errno == ERANGE) {
    usage_error(flag + " value " + text + " does not fit in 64 bits");
  }
  return v;
}

double parse_double(const std::string& flag, const char* text, double lo,
                    double hi) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0') {
    usage_error(flag + " expects a number, got '" + text + "'");
  }
  if (errno == ERANGE || !(v >= lo && v <= hi)) {
    usage_error(flag + " value " + text + " is out of range [" +
                std::to_string(lo) + ", " + std::to_string(hi) + "]");
  }
  return v;
}

swim::Config config_by_name(const std::string& name) {
  if (name == "swim") return swim::Config::swim_baseline();
  if (name == "lha-probe") return swim::Config::lha_probe_only();
  if (name == "lha-suspicion") return swim::Config::lha_suspicion_only();
  if (name == "buddy") return swim::Config::buddy_only();
  if (name == "lifeguard") return swim::Config::lifeguard();
  usage_error("unknown --config '" + name +
              "' (expected swim|lha-probe|lha-suspicion|buddy|lifeguard)");
}

/// The timeline a catalog entry executes: explicit, or the AnomalyPlan
/// shim's one-entry equivalent. Shown in both catalog formats.
std::string timeline_summary(const Scenario& s) {
  const fault::Timeline tl = s.effective_timeline();
  return tl.empty() ? "none" : tl.summary();
}

void list_catalog() {
  Table t({"Scenario", "Paper", "Fault timeline", "Nodes", "Membership",
           "Description"});
  for (const Scenario& s : ScenarioRegistry::builtin().all()) {
    t.add_row({s.name, s.paper_ref.empty() ? "-" : s.paper_ref,
               timeline_summary(s), std::to_string(s.cluster_size),
               s.membership, s.summary});
  }
  t.print();
  std::printf("\nRun one with: scenario_runner --scenario NAME "
              "(flags override fields; e.g. --nodes 32 --length 60)\n");
}

/// The docs/scenarios.md reference page, generated so it can never drift
/// from the registry (CI regenerates and diffs it). Output is fully
/// deterministic: registry order, no timestamps.
void list_catalog_markdown() {
  std::printf(
      "# Scenario reference\n"
      "\n"
      "<!-- Generated by `scenario_runner --list --markdown` via\n"
      "     tools/update-scenario-docs.sh. Do not edit by hand: CI\n"
      "     regenerates this page and fails when it is stale. -->\n"
      "\n"
      "Every scenario in the built-in catalog "
      "(`harness::ScenarioRegistry::builtin()`), runnable with\n"
      "`scenario_runner --scenario NAME` (flags override fields; see\n"
      "`scenario_runner --list` for the live view and README.md for the\n"
      "workflow). The fault-timeline column uses the `--fault` grammar\n"
      "(`KIND@AT:DUR,key=val`; see `src/fault/fault.h`). Every entry is\n"
      "also committed as versioned JSON under `scenarios/` with baseline\n"
      "metric bands in `scenarios/baselines.json` — run one with\n"
      "`scenario_runner --scenario-file scenarios/NAME.json`, and see\n"
      "[scenario-files.md](scenario-files.md) for the file format and the\n"
      "baseline-gate policy.\n"
      "\n"
      "| Scenario | Paper | Nodes | Length | Membership | Default checks | "
      "Fault timeline |\n"
      "|---|---|---:|---:|---|---|---|\n");
  for (const Scenario& s : ScenarioRegistry::builtin().all()) {
    std::printf("| `%s` | %s | %d | %.0f s | `%s` | %s | `%s` |\n",
                s.name.c_str(),
                s.paper_ref.empty() ? "—" : s.paper_ref.c_str(),
                s.cluster_size, s.run_length.seconds(), s.membership.c_str(),
                s.checks.enabled ? "on" : "off",
                timeline_summary(s).c_str());
  }
  std::printf("\n## Descriptions\n\n");
  for (const Scenario& s : ScenarioRegistry::builtin().all()) {
    std::printf("- **`%s`**%s — %s.\n", s.name.c_str(),
                s.paper_ref.empty() ? ""
                                    : (" (" + s.paper_ref + ")").c_str(),
                s.summary.c_str());
  }
  std::printf(
      "\nThe `big-*` tier (n = 1000–4000) ships with the full protocol\n"
      "invariant suite enabled and exists to exercise join storms,\n"
      "large-view dissemination and the simulator's hot paths at scale —\n"
      "see docs/benchmarks.md for the performance baselines that gate\n"
      "them.\n");
}

/// Machine-readable catalog for tooling: one object per scenario.
/// (json_escape comes from harness/report.h — one escaping rule set.)
void list_catalog_json() {
  std::printf("[\n");
  const auto& all = ScenarioRegistry::builtin().all();
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Scenario& s = all[i];
    std::printf("  {\"name\": \"%s\", \"paper_ref\": \"%s\", "
                "\"description\": \"%s\", \"nodes\": %d, "
                "\"run_length_s\": %.0f, \"membership\": \"%s\", "
                "\"timeline\": \"%s\"}%s\n",
                json_escape(s.name).c_str(), json_escape(s.paper_ref).c_str(),
                json_escape(s.summary).c_str(), s.cluster_size,
                s.run_length.seconds(), json_escape(s.membership).c_str(),
                json_escape(timeline_summary(s)).c_str(),
                i + 1 < all.size() ? "," : "");
  }
  std::printf("]\n");
}

std::string mean_ci(const Summary& s) {
  const ConfInterval ci = t_interval(s);
  return fmt_double(s.mean, 2) + " ± " + fmt_double(ci.half_width, 2);
}

void report_campaign(const CampaignResult& r) {
  const PointStats& ps = r.points.front();
  Table t({"Metric", "Mean ± 95% CI", "Min", "Max", "N"});
  auto row = [&t](const char* name, const Summary& s) {
    t.add_row({name, mean_ci(s), fmt_double(s.min, 2), fmt_double(s.max, 2),
               fmt_int(static_cast<std::int64_t>(s.count))});
  };
  row("FP events (healthy subjects)", ps.fp);
  row("FP- events (healthy reporters)", ps.fp_healthy);
  row("compound messages sent", ps.msgs);
  row("bytes sent", ps.bytes);
  if (ps.first_detect.count() > 0) {
    const Summary fd = ps.first_detect.summary();
    t.add_row({"1st detect p50 / p99 (s)",
               fmt_double(fd.p50, 2) + " / " + fmt_double(fd.p99, 2), "", "",
               fmt_int(static_cast<std::int64_t>(fd.count))});
  }
  if (ps.full_dissem.count() > 0) {
    const Summary dd = ps.full_dissem.summary();
    t.add_row({"full dissem p50 / p99 (s)",
               fmt_double(dd.p50, 2) + " / " + fmt_double(dd.p99, 2), "", "",
               fmt_int(static_cast<std::int64_t>(dd.count))});
  }
  t.print();
}

void report(const RunResult& r) {
  Table t({"Metric", "Value"});
  t.add_row({"FP events (healthy subjects)", fmt_int(r.fp_events)});
  t.add_row({"FP- events (healthy reporters)", fmt_int(r.fp_healthy_events)});
  if (!r.first_detect.empty()) {
    Histogram h;
    for (double s : r.first_detect) h.record(s);
    t.add_row({"detections", fmt_int(static_cast<std::int64_t>(h.count()))});
    t.add_row({"median 1st detect (s)", fmt_double(h.percentile(0.5), 2)});
    t.add_row({"99th 1st detect (s)", fmt_double(h.percentile(0.99), 2)});
  }
  if (!r.full_dissem.empty()) {
    Histogram h;
    for (double s : r.full_dissem) h.record(s);
    t.add_row({"median full dissem (s)", fmt_double(h.percentile(0.5), 2)});
  }
  t.add_row({"compound messages sent", fmt_int(r.msgs_sent)});
  t.add_row({"bytes sent", fmt_int(r.bytes_sent)});
  t.print();
}

void report_checks(const check::RunReport& cr) {
  std::printf("\ninvariants: %zu checked over %lld events — %s\n",
              cr.invariants.size(),
              static_cast<long long>(cr.events_seen),
              cr.passed() ? "all hold"
                          : (std::to_string(cr.total_violations) +
                             " violation(s)")
                                .c_str());
  for (const check::Violation& v : cr.violations) {
    std::printf("  %s\n", v.describe().c_str());
  }
  if (static_cast<std::int64_t>(cr.violations.size()) < cr.total_violations) {
    std::printf("  ... and %lld more\n",
                static_cast<long long>(cr.total_violations -
                                       static_cast<std::int64_t>(
                                           cr.violations.size())));
  }
}

/// Write DIR/series.jsonl + DIR/metrics.prom from one run's series. Returns
/// 0, or 2 when the directory/file cannot be created.
int write_metrics_artifacts(const std::string& dir, const obs::Series& series) {
  ::mkdir(dir.c_str(), 0755);  // EEXIST is fine; open errors are caught below
  const std::string series_path = dir + "/series.jsonl";
  std::ofstream js(series_path);
  if (!js) {
    std::fprintf(stderr, "scenario_runner: cannot write %s\n",
                 series_path.c_str());
    return 2;
  }
  obs::write_series_jsonl(js, series);
  const std::string prom_path = dir + "/metrics.prom";
  std::ofstream prom(prom_path);
  if (!prom) {
    std::fprintf(stderr, "scenario_runner: cannot write %s\n",
                 prom_path.c_str());
    return 2;
  }
  obs::write_prometheus(prom, series);
  std::printf("metrics: %s (%zu samples), %s\n", series_path.c_str(),
              series.size(), prom_path.c_str());
  return 0;
}

int run_replay(const std::string& path,
               const std::optional<std::string>& metrics_out) {
  std::string error;
  const auto loaded = check::load_trace_file(path, error);
  if (!loaded) {
    std::fprintf(stderr, "scenario_runner: --replay: %s\n", error.c_str());
    return 2;
  }
  if (metrics_out) {
    // Offline re-analysis: the samples are already in the trace, so no
    // re-execution is needed to export them.
    obs::Series series;
    for (const check::TraceEvent& e : loaded->events) {
      if (e.kind != check::TraceEventKind::kMetricSample) continue;
      const auto m = obs::metric_from_id(e.peer);
      if (!m) continue;
      series.push_back(obs::Sample{e.at, *m, e.node, e.value});
    }
    std::printf("extracting metrics from %s: %zu samples of %zu events\n",
                path.c_str(), series.size(), loaded->events.size());
    return write_metrics_artifacts(*metrics_out, series);
  }
  std::printf("replaying %s: scenario '%s', seed %llu, %zu recorded "
              "events\n",
              path.c_str(), loaded->header.scenario.c_str(),
              static_cast<unsigned long long>(loaded->header.seed),
              loaded->events.size());
  const auto scenario = check::scenario_from_header(loaded->header, error);
  if (!scenario) {
    std::fprintf(stderr, "scenario_runner: --replay: %s\n", error.c_str());
    return 2;
  }
  const check::ReplayResult r = check::replay(*scenario, *loaded);
  if (r.result.checks.checked) report_checks(r.result.checks);
  if (!r.matches) {
    std::fprintf(stderr, "replay DIVERGED: %s\n", r.divergence.c_str());
    return 4;
  }
  std::printf("replay matches the recording: %zu events, bit for bit\n",
              r.trace.events.size());
  return 0;
}

// ---------------------------------------------------------------------------
// Scenario files & baseline gates (docs/scenario-files.md)

/// The gated registry tier: everything below the big-* threshold, plus the
/// big-* entries when asked (they cost minutes of wall time each).
std::vector<Scenario> registry_tier(bool include_big) {
  std::vector<Scenario> out;
  for (const Scenario& s : ScenarioRegistry::builtin().all()) {
    if (include_big || s.cluster_size < 1000) out.push_back(s);
  }
  return out;
}

/// Run every scenario on a worker pool (the campaign-trial pattern: runs
/// are independent and deterministic, so results are order-free).
std::vector<RunResult> run_registry(const std::vector<Scenario>& all,
                                    int jobs) {
  std::vector<RunResult> results(all.size());
  std::vector<std::thread> pool;
  std::atomic<std::size_t> next{0};
  const std::size_t workers = std::min<std::size_t>(
      jobs > 0 ? static_cast<std::size_t>(jobs)
               : std::max(1u, std::thread::hardware_concurrency()),
      std::max<std::size_t>(1, all.size()));
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= all.size()) return;
        results[i] = run(all[i]);
      }
    });
  }
  for (auto& th : pool) th.join();
  return results;
}

int run_export_scenarios(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const auto& all = ScenarioRegistry::builtin().all();
  for (const Scenario& s : all) {
    std::string error;
    if (!ScenarioFile::save(s, dir + "/" + ScenarioFile::filename(s),
                            error)) {
      std::fprintf(stderr, "scenario_runner: --export-scenarios: %s\n",
                   error.c_str());
      return 2;
    }
  }
  std::printf("exported %zu scenario files to %s/\n", all.size(),
              dir.c_str());
  return 0;
}

/// One file's strict validation, dispatched on the canonical filename:
/// baselines.json is the band document, coverage.json the fuzz coverage
/// report, everything else a scenario.
bool validate_one(const std::filesystem::path& path, std::string& error) {
  if (path.filename() == "baselines.json") {
    return load_baselines_file(path.string(), error).has_value();
  }
  if (path.filename() == "coverage.json") {
    return fuzz::load_coverage_report(path.string(), error).has_value();
  }
  return ScenarioFile::load(path.string(), error).has_value();
}

int run_validate_scenarios(const std::string& target) {
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  if (std::filesystem::is_directory(target, ec)) {
    for (const auto& entry : std::filesystem::directory_iterator(target)) {
      if (entry.path().extension() == ".json") files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    if (files.empty()) {
      std::fprintf(stderr,
                   "scenario_runner: --validate-scenarios: no *.json files "
                   "under %s\n",
                   target.c_str());
      return 2;
    }
  } else {
    files.push_back(target);
  }
  int defects = 0;
  for (const auto& path : files) {
    std::string error;
    if (!validate_one(path, error)) {
      std::fprintf(stderr, "scenario_runner: %s\n", error.c_str());
      ++defects;
    }
  }
  if (defects > 0) {
    std::fprintf(stderr, "%d of %zu file(s) failed validation\n", defects,
                 files.size());
    return 2;
  }
  std::printf("%zu file(s) valid\n", files.size());
  return 0;
}

int run_record_baselines(const std::string& file, bool include_big,
                         int jobs) {
  const std::vector<Scenario> all = registry_tier(include_big);
  std::printf("recording baselines for %zu scenario(s)...\n", all.size());
  const std::vector<RunResult> results = run_registry(all, jobs);
  BaselineSet set;
  for (std::size_t i = 0; i < all.size(); ++i) {
    set.entries.push_back(record_baseline(all[i], results[i]));
  }
  std::string error;
  if (!save_baselines_file(set, file, error)) {
    std::fprintf(stderr, "scenario_runner: --record-baselines: %s\n",
                 error.c_str());
    return 2;
  }
  std::printf("recorded %zu baseline(s) to %s\n", set.entries.size(),
              file.c_str());
  return 0;
}

int run_gate_registry(const std::string& file, bool include_big, int jobs) {
  std::string error;
  const auto baselines = load_baselines_file(file, error);
  if (!baselines) {
    std::fprintf(stderr, "scenario_runner: --gate-registry: %s\n",
                 error.c_str());
    return 2;
  }
  const std::vector<Scenario> all = registry_tier(include_big);
  std::printf("gating %zu scenario(s) against %s...\n", all.size(),
              file.c_str());
  const std::vector<RunResult> results = run_registry(all, jobs);
  int failures = 0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    const GateReport report = gate_run(all[i], results[i], *baselines);
    std::printf("%s\n", report.describe().c_str());
    if (!report.passed) ++failures;
  }
  // A baseline whose scenario left the gated tier is stale data — catch
  // renames and deletions, not just metric drift.
  for (const ScenarioBaseline& e : baselines->entries) {
    const bool known = std::any_of(
        all.begin(), all.end(),
        [&](const Scenario& s) { return s.name == e.scenario; });
    if (!known) {
      std::printf("gate FAIL %s: baseline has no matching scenario in the "
                  "gated tier (re-record with tools/record-baselines.sh)\n",
                  e.scenario.c_str());
      ++failures;
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "\n%d of %zu gate(s) failed\n", failures,
                 all.size());
    return 6;
  }
  std::printf("all %zu gate(s) passed\n", all.size());
  return 0;
}

int run_fuzz(const Scenario& base, int trials, std::uint64_t fuzz_seed,
             const std::optional<std::string>& out_dir, int fuzz_jobs) {
  fuzz::EngineOptions opts;
  opts.trials = trials;
  opts.seed = fuzz_seed;
  opts.jobs = fuzz_jobs;
  if (out_dir) opts.out_dir = *out_dir;
  std::printf("fuzz: %d trial(s), seed %llu, jobs=%s, base '%s' "
              "(%d nodes, membership=%s)\n",
              trials, static_cast<unsigned long long>(fuzz_seed),
              fuzz_jobs == 0 ? "auto" : std::to_string(fuzz_jobs).c_str(),
              base.name.c_str(), base.cluster_size, base.membership.c_str());
  fuzz::Engine engine(base, opts);
  const fuzz::FuzzReport r = engine.run();
  std::printf("\nfuzz: %d trial(s) over %d generation(s) — %zu coverage "
              "key(s), digest %llu, corpus of %zu timeline(s)\n",
              r.trials, r.generations, r.coverage_keys,
              static_cast<unsigned long long>(r.coverage_digest),
              r.corpus_size);
  for (const fuzz::Finding& f : r.findings) {
    std::string invariants;
    for (const std::string& inv : f.invariants) {
      if (!invariants.empty()) invariants += ", ";
      invariants += inv;
    }
    std::printf("finding: %s (trial %d, shrunk to %zu timeline entr%s "
                "in %d round(s))%s%s\n",
                invariants.c_str(), f.trial_index,
                f.reproducer.effective_timeline().size(),
                f.reproducer.effective_timeline().size() == 1 ? "y" : "ies",
                f.shrink.rounds, f.file.empty() ? "" : " -> ",
                f.file.c_str());
  }
  if (!r.report_file.empty()) {
    std::printf("coverage report: %s (%zu corpus file(s))\n",
                r.report_file.c_str(), r.corpus_files.size());
  }
  if (!r.findings.empty()) {
    std::fprintf(stderr,
                 "\n%zu distinct invariant-violation signature(s) found — "
                 "replay a reproducer with --scenario-file FILE --check\n",
                 r.findings.size());
    return 3;
  }
  std::printf("no invariant violations in this budget\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Catalog mode is handled up front so `--json` can be a bare flag here
  // while remaining `--json FILE` in campaign mode.
  {
    bool list_mode = false, json_mode = false, markdown_mode = false;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--list") == 0) list_mode = true;
      if (std::strcmp(argv[i], "--json") == 0) json_mode = true;
      if (std::strcmp(argv[i], "--markdown") == 0) markdown_mode = true;
    }
    if (list_mode) {
      if (json_mode) {
        list_catalog_json();
      } else if (markdown_mode) {
        list_catalog_markdown();
      } else {
        list_catalog();
      }
      return 0;
    }
  }

  Scenario s;
  s.name = "custom";
  s.summary = "ad-hoc scenario composed from flags";
  s.cluster_size = 64;
  s.config = swim::Config::lifeguard();
  s.anomaly = AnomalyPlan::cycling(8, msec(16384), msec(4));
  s.run_length = sec(120);

  // Flag values are collected first and applied on top of the base scenario
  // (the catalog entry or the ad-hoc default) so order doesn't matter.
  std::optional<double> alpha, beta;
  std::optional<int> nodes, victims;
  std::optional<Duration> duration, interval, length, quiesce;
  std::optional<std::uint64_t> seed;
  std::optional<std::string> anomaly_name, config_name, membership;
  std::vector<fault::TimelineEntry> fault_entries;
  bool campaign_mode = false;
  bool check_mode = false;
  int reps = 5;
  int jobs = 0;  // 0 = one worker per hardware thread
  std::optional<std::string> json_path, csv_path, trace_path, replay_path;
  std::optional<std::string> export_dir, validate_path, record_path;
  std::optional<std::string> gate_path, gate_registry_path;
  bool include_big = false;
  std::optional<std::string> metrics_out;
  std::optional<Duration> metrics_interval;
  bool spans = false;
  std::optional<Duration> suspicion_cap;
  std::optional<int> fuzz_trials;
  std::uint64_t fuzz_seed = 1;
  std::optional<std::string> fuzz_out;
  int fuzz_jobs = 0;  // 0 = one worker per hardware thread
  harness::Backend backend = harness::Backend::kSim;
  std::optional<Duration> watchdog_timeout;
  std::string live_logs = "live-logs";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--fault") {
      std::string error;
      const auto entry = fault::parse_timeline_entry(next(), error);
      if (!entry) usage_error("--fault: " + error);
      fault_entries.push_back(*entry);
    } else if (arg == "--scenario") {
      const std::string name = next();
      const Scenario* found = ScenarioRegistry::builtin().find(name);
      if (found == nullptr) {
        usage_error("unknown scenario '" + name +
                    "' — run with --list to see the catalog");
      }
      s = *found;
    } else if (arg == "--scenario-file") {
      std::string error;
      const auto loaded = ScenarioFile::load(next(), error);
      if (!loaded) usage_error("--scenario-file: " + error);
      s = *loaded;
    } else if (arg == "--export-scenarios") {
      export_dir = next();
    } else if (arg == "--validate-scenarios") {
      validate_path = next();
    } else if (arg == "--record-baselines") {
      record_path = next();
    } else if (arg == "--gate") {
      gate_path = next();
    } else if (arg == "--gate-registry") {
      gate_registry_path = next();
    } else if (arg == "--include-big") {
      include_big = true;
    } else if (arg == "--nodes") {
      nodes = static_cast<int>(parse_int(arg, next(), 2, 4096));
    } else if (arg == "--config") {
      config_name = next();
    } else if (arg == "--membership") {
      std::string error;
      membership = next();
      if (!membership::parse_spec(*membership, &error)) {
        usage_error("--membership: " + error);
      }
    } else if (arg == "--anomaly") {
      anomaly_name = next();
    } else if (arg == "--victims") {
      victims = static_cast<int>(parse_int(arg, next(), 0, 4096));
    } else if (arg == "--duration") {
      duration = msec(parse_int(arg, next(), 1, 86400000));
    } else if (arg == "--interval") {
      interval = msec(parse_int(arg, next(), 1, 86400000));
    } else if (arg == "--length") {
      length = sec(parse_int(arg, next(), 1, 86400));
    } else if (arg == "--quiesce") {
      quiesce = sec(parse_int(arg, next(), 0, 3600));
    } else if (arg == "--alpha") {
      alpha = parse_double(arg, next(), 0.1, 1000.0);
    } else if (arg == "--beta") {
      beta = parse_double(arg, next(), 1.0, 1000.0);
    } else if (arg == "--seed") {
      seed = parse_u64(arg, next());
    } else if (arg == "--campaign") {
      campaign_mode = true;
    } else if (arg == "--check") {
      check_mode = true;
    } else if (arg == "--suspicion-cap") {
      check_mode = true;
      suspicion_cap = msec(parse_int(arg, next(), 1, 86400000));
    } else if (arg == "--fuzz") {
      fuzz_trials = static_cast<int>(parse_int(arg, next(), 1, 1000000));
    } else if (arg == "--fuzz-seed") {
      fuzz_seed = parse_u64(arg, next());
    } else if (arg == "--fuzz-out") {
      fuzz_out = next();
    } else if (arg == "--fuzz-jobs") {
      fuzz_jobs = static_cast<int>(parse_int(arg, next(), 0, 1024));
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--replay") {
      replay_path = next();
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--metrics-interval") {
      metrics_interval = msec(parse_int(arg, next(), 1, 86400000));
    } else if (arg == "--spans") {
      spans = true;
    } else if (arg == "--reps") {
      reps = static_cast<int>(parse_int(arg, next(), 1, 100000));
    } else if (arg == "--jobs") {
      jobs = static_cast<int>(parse_int(arg, next(), 0, 1024));
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--csv") {
      csv_path = next();
    } else if (arg == "--backend") {
      const std::string name = next();
      const auto b = harness::backend_from_name(name);
      if (!b) usage_error("unknown --backend '" + name + "' (sim|live)");
      backend = *b;
    } else if (arg == "--timeout") {
      watchdog_timeout = sec(parse_int(arg, next(), 1, 86400));
    } else if (arg == "--live-logs") {
      live_logs = next();
    } else {
      usage_error("unknown option " + arg);
    }
  }

  // The registry-wide subcommands don't run the composed scenario; they are
  // dispatched here, one per invocation.
  {
    const int subcommands = (export_dir ? 1 : 0) + (validate_path ? 1 : 0) +
                            (record_path ? 1 : 0) +
                            (gate_registry_path ? 1 : 0);
    if (subcommands > 1) {
      usage_error("--export-scenarios, --validate-scenarios, "
                  "--record-baselines and --gate-registry are one-per-"
                  "invocation subcommands");
    }
    if (export_dir) return run_export_scenarios(*export_dir);
    if (validate_path) return run_validate_scenarios(*validate_path);
    if (record_path) return run_record_baselines(*record_path, include_big,
                                                 jobs);
    if (gate_registry_path) {
      return run_gate_registry(*gate_registry_path, include_big, jobs);
    }
  }
  if (gate_path && (campaign_mode || replay_path ||
                    backend != harness::Backend::kSim)) {
    usage_error("--gate checks one simulator run against its baseline — "
                "it cannot combine with --campaign, --replay or "
                "--backend live");
  }

  if (replay_path) {
    if (argc != 3 + (metrics_out ? 2 : 0)) {
      usage_error("--replay FILE re-executes a recorded trace and takes no "
                  "other flags (except --metrics-out DIR for offline metric "
                  "extraction) — the trace header is the scenario");
    }
    return run_replay(*replay_path, metrics_out);
  }

  if (nodes) s.cluster_size = *nodes;
  if (length) s.run_length = *length;
  if (quiesce) s.quiesce = *quiesce;
  if (seed) s.seed = *seed;
  if (config_name) s.config = config_by_name(*config_name);
  if (membership) s.membership = *membership;
  if (s.config.lha_suspicion) {
    if (alpha) s.config.suspicion_alpha = *alpha;
    if (beta) s.config.suspicion_beta = *beta;
  }
  if (anomaly_name) {
    const auto kind = anomaly_kind_from_name(*anomaly_name);
    if (!kind) {
      usage_error("unknown --anomaly '" + *anomaly_name +
                  "' (expected none|threshold|interval|stress|partition|"
                  "flapping|churn)");
    }
    s.anomaly.kind = *kind;
    if (*kind == AnomalyKind::kNone) s.anomaly.victims = 0;
  }
  if (victims) s.anomaly.victims = *victims;
  if (duration) s.anomaly.duration = *duration;
  if (interval) s.anomaly.interval = *interval;

  if (!fault_entries.empty()) {
    if (anomaly_name || victims || duration || interval) {
      usage_error("--fault composes a timeline and cannot be mixed with the "
                  "single-slot --anomaly/--victims/--duration/--interval "
                  "flags");
    }
    s.anomaly = AnomalyPlan::none();
    s.timeline = fault::Timeline{};
    for (fault::TimelineEntry& e : fault_entries) s.timeline.add(std::move(e));
  }

  // Mention the backend only when it isn't the default — keeps swim output
  // (and anything diffing it) byte-identical to pre-backend versions.
  const std::string membership_note =
      s.membership == "swim" ? "" : " membership=" + s.membership;
  if (s.timeline.empty()) {
    std::printf("scenario: %s — %d nodes, %s, anomaly=%s victims=%d "
                "D=%.0fms I=%.0fms length=%.0fs seed=%llu%s\n\n",
                s.name.c_str(), s.cluster_size, s.config.table1_name().c_str(),
                anomaly_kind_name(s.anomaly.kind), s.anomaly.victims,
                s.anomaly.duration.millis(), s.anomaly.interval.millis(),
                s.run_length.seconds(),
                static_cast<unsigned long long>(s.seed),
                membership_note.c_str());
  } else {
    std::printf("scenario: %s — %d nodes, %s, timeline [%s] "
                "length=%.0fs seed=%llu%s\n\n",
                s.name.c_str(), s.cluster_size, s.config.table1_name().c_str(),
                s.timeline.summary().c_str(), s.run_length.seconds(),
                static_cast<unsigned long long>(s.seed),
                membership_note.c_str());
  }

  if (check_mode) s.checks = check::Spec::all();
  if (suspicion_cap) s.checks.suspicion_cap = *suspicion_cap;
  if (metrics_interval) {
    s.metrics_interval = *metrics_interval;
  } else if (metrics_out && s.metrics_interval <= Duration{0}) {
    s.metrics_interval = msec(500);
  }

  if (fuzz_trials) {
    if (campaign_mode || trace_path || gate_path || metrics_out ||
        backend != harness::Backend::kSim) {
      usage_error("--fuzz is its own simulator-only mode and cannot combine "
                  "with --campaign, --trace, --gate, --metrics-out or "
                  "--backend live");
    }
    try {
      return run_fuzz(s, *fuzz_trials, fuzz_seed, fuzz_out, fuzz_jobs);
    } catch (const ScenarioError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    } catch (const std::runtime_error& e) {
      std::fprintf(stderr, "scenario_runner: %s\n", e.what());
      return 2;
    }
  }

  if (backend == harness::Backend::kLive && campaign_mode) {
    usage_error("--campaign is simulator-only: a statistical sweep needs the "
                "determinism and speed a real-process cluster cannot offer");
  }
  if (backend == harness::Backend::kLive &&
      membership::base_name(s.membership) != "swim") {
    usage_error("the live tier only runs the swim backend — '" + s.membership +
                "' is simulator-only");
  }

  // Watchdog: a hard wall-clock ceiling on the whole invocation. On expiry
  // every registered worker is SIGKILLed so no orphans survive, then the
  // runner exits 5. Armed only when --timeout is given.
  static std::atomic<bool> finished{false};
  if (watchdog_timeout) {
    const Duration limit = *watchdog_timeout;
    std::thread([limit] {
      const std::int64_t deadline =
          net::steady_now_ns() + limit.us * 1000;
      while (net::steady_now_ns() < deadline) {
        if (finished.load()) return;
        ::usleep(50 * 1000);
      }
      if (finished.load()) return;
      std::fprintf(stderr,
                   "scenario_runner: watchdog expired after %.0fs — killing "
                   "workers\n",
                   limit.seconds());
      live::emergency_teardown();
      std::_Exit(5);
    }).detach();
  }

  try {
    if (campaign_mode) {
      if (trace_path) {
        usage_error("--trace records one run and cannot be combined with "
                    "--campaign (per-trial verdicts land in --json/--csv)");
      }
      Campaign camp;
      camp.name = s.name;
      camp.base = s;
      camp.repetitions = reps;
      camp.jobs = jobs;
      camp.base_seed = s.seed;

      std::vector<Reporter*> reporters;
      ProgressReporter meter(s.name);
      reporters.push_back(&meter);
      std::ofstream json_out, csv_out;
      std::optional<JsonlReporter> jsonl;
      std::optional<CsvReporter> csv;
      if (json_path) {
        json_out.open(*json_path);
        if (!json_out) usage_error("cannot open --json file " + *json_path);
        reporters.push_back(&jsonl.emplace(json_out));
      }
      if (csv_path) {
        csv_out.open(*csv_path);
        if (!csv_out) usage_error("cannot open --csv file " + *csv_path);
        reporters.push_back(&csv.emplace(csv_out));
      }

      std::printf("campaign: %d repetitions, jobs=%s\n\n", reps,
                  jobs == 0 ? "auto" : std::to_string(jobs).c_str());
      const CampaignResult result = run(camp, reporters);
      report_campaign(result);
      if (json_path) std::printf("\nJSONL artifact: %s\n", json_path->c_str());
      if (csv_path) std::printf("CSV artifact: %s\n", csv_path->c_str());
      if (metrics_out) {
        // Runner campaigns have one grid point; its folded bands are the
        // campaign's metric artifact.
        const auto& bands = result.points.front().series;
        ::mkdir(metrics_out->c_str(), 0755);
        const std::string bands_jsonl = *metrics_out + "/bands.jsonl";
        const std::string bands_csv = *metrics_out + "/bands.csv";
        std::ofstream bj(bands_jsonl), bc(bands_csv);
        if (!bj || !bc) {
          std::fprintf(stderr, "scenario_runner: cannot write under %s\n",
                       metrics_out->c_str());
          return 2;
        }
        obs::write_bands_jsonl(bj, bands);
        obs::write_bands_csv(bc, bands);
        std::printf("metrics: %s, %s (%zu bands over %d trials)\n",
                    bands_jsonl.c_str(), bands_csv.c_str(), bands.size(),
                    result.points.front().trials);
      }
      int violating = 0;
      for (const PointStats& ps : result.points) {
        violating += ps.violating_trials;
      }
      if (violating > 0) {
        std::fprintf(stderr,
                     "\n%d trial(s) violated protocol invariants — see the "
                     "per-trial artifacts\n",
                     violating);
        return 3;
      }
    } else {
      if (json_path || csv_path) {
        usage_error("--json/--csv require --campaign (artifacts describe "
                    "multi-trial runs)");
      }
      // Record whenever a trace was requested — and always under --check,
      // so a violation ships with its replayable reproducer.
      std::optional<check::TraceRecorder> recorder;
      std::vector<check::TraceSink*> sinks;
      if (trace_path || check_mode) {
        recorder.emplace(s, /*include_datagrams=*/false,
                         /*include_probe_spans=*/spans);
        sinks.push_back(&*recorder);
      }
      harness::RunOptions run_opts;
      run_opts.backend = backend;
      if (watchdog_timeout) run_opts.timeout = *watchdog_timeout;
      run_opts.log_dir = live_logs;
      const RunResult r = run(s, run_opts, sinks);
      report(r);
      if (r.checks.checked) report_checks(r.checks);
      if (metrics_out) {
        const int rc = write_metrics_artifacts(*metrics_out, r.series);
        if (rc != 0) return rc;
      }

      std::string save_to;
      if (trace_path) {
        save_to = *trace_path;
      } else if (!r.checks.passed() && r.checks.checked) {
        save_to = s.name + "-violation.trace.jsonl";
      }
      if (!save_to.empty()) {
        std::string error;
        if (!check::save_trace_file(recorder->trace(), save_to, error)) {
          std::fprintf(stderr, "scenario_runner: %s\n", error.c_str());
          return 2;
        }
        std::printf("\ntrace: %s (%zu events; verify with --replay %s)\n",
                    save_to.c_str(), recorder->trace().events.size(),
                    save_to.c_str());
      }
      bool gate_failed = false;
      if (gate_path) {
        std::string error;
        const auto baselines = load_baselines_file(*gate_path, error);
        if (!baselines) {
          std::fprintf(stderr, "scenario_runner: --gate: %s\n",
                       error.c_str());
          finished.store(true);
          return 2;
        }
        const GateReport gr = gate_run(s, r, *baselines);
        std::printf("\n%s\n", gr.describe().c_str());
        gate_failed = !gr.passed;
      }
      if (r.checks.checked && !r.checks.passed()) {
        finished.store(true);
        return 3;
      }
      if (gate_failed) {
        finished.store(true);
        return 6;
      }
    }
  } catch (const live::TimeoutError& e) {
    std::fprintf(stderr, "scenario_runner: %s\n", e.what());
    live::emergency_teardown();
    return 5;
  } catch (const ScenarioError& e) {
    finished.store(true);
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  finished.store(true);
  return 0;
}
