// Parameterized scenario driver: run any anomaly scenario against any
// configuration from the command line, without writing code.
//
//   ./examples/scenario_runner [options]
//     --nodes N          cluster size               (default 64)
//     --config NAME      swim|lha-probe|lha-suspicion|buddy|lifeguard
//                                                   (default lifeguard)
//     --anomaly KIND     none|threshold|interval|stress (default interval)
//     --victims C        concurrent anomalies        (default 8)
//     --duration MS      anomaly duration D in ms    (default 16384)
//     --interval MS      recovery interval I in ms   (default 4)
//     --length S         test length in seconds      (default 120)
//     --alpha A --beta B suspicion tuning            (default 5 / 6)
//     --seed S           RNG seed                    (default 1)
//
// Prints the paper's metrics for the single run: FP, FP-, detection and
// dissemination latencies, message load.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/experiment.h"
#include "harness/table.h"

using namespace lifeguard;
using namespace lifeguard::harness;

namespace {

struct Options {
  int nodes = 64;
  std::string config = "lifeguard";
  std::string anomaly = "interval";
  int victims = 8;
  std::int64_t duration_ms = 16384;
  std::int64_t interval_ms = 4;
  std::int64_t length_s = 120;
  double alpha = 5.0;
  double beta = 6.0;
  std::uint64_t seed = 1;
};

swim::Config config_by_name(const std::string& name) {
  if (name == "swim") return swim::Config::swim_baseline();
  if (name == "lha-probe") return swim::Config::lha_probe_only();
  if (name == "lha-suspicion") return swim::Config::lha_suspicion_only();
  if (name == "buddy") return swim::Config::buddy_only();
  if (name == "lifeguard") return swim::Config::lifeguard();
  std::fprintf(stderr, "unknown config '%s'\n", name.c_str());
  std::exit(2);
}

bool parse(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--nodes") {
      o.nodes = std::atoi(next());
    } else if (arg == "--config") {
      o.config = next();
    } else if (arg == "--anomaly") {
      o.anomaly = next();
    } else if (arg == "--victims") {
      o.victims = std::atoi(next());
    } else if (arg == "--duration") {
      o.duration_ms = std::atoll(next());
    } else if (arg == "--interval") {
      o.interval_ms = std::atoll(next());
    } else if (arg == "--length") {
      o.length_s = std::atoll(next());
    } else if (arg == "--alpha") {
      o.alpha = std::atof(next());
    } else if (arg == "--beta") {
      o.beta = std::atof(next());
    } else if (arg == "--seed") {
      o.seed = std::strtoull(next(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

void report(const RunResult& r) {
  Table t({"Metric", "Value"});
  t.add_row({"FP events (healthy subjects)", fmt_int(r.fp_events)});
  t.add_row({"FP- events (healthy reporters)", fmt_int(r.fp_healthy_events)});
  if (!r.first_detect.empty()) {
    Histogram h;
    for (double s : r.first_detect) h.record(s);
    t.add_row({"detections", fmt_int(static_cast<std::int64_t>(h.count()))});
    t.add_row({"median 1st detect (s)", fmt_double(h.percentile(0.5), 2)});
    t.add_row({"99th 1st detect (s)", fmt_double(h.percentile(0.99), 2)});
  }
  if (!r.full_dissem.empty()) {
    Histogram h;
    for (double s : r.full_dissem) h.record(s);
    t.add_row({"median full dissem (s)", fmt_double(h.percentile(0.5), 2)});
  }
  t.add_row({"compound messages sent", fmt_int(r.msgs_sent)});
  t.add_row({"bytes sent", fmt_int(r.bytes_sent)});
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse(argc, argv, o)) return 2;

  swim::Config cfg = config_by_name(o.config);
  if (cfg.lha_suspicion) {
    cfg.suspicion_alpha = o.alpha;
    cfg.suspicion_beta = o.beta;
  }

  std::printf("scenario: %d nodes, %s, anomaly=%s C=%d D=%lldms I=%lldms "
              "length=%llds seed=%llu\n\n",
              o.nodes, cfg.table1_name().c_str(), o.anomaly.c_str(),
              o.victims, static_cast<long long>(o.duration_ms),
              static_cast<long long>(o.interval_ms),
              static_cast<long long>(o.length_s),
              static_cast<unsigned long long>(o.seed));

  if (o.anomaly == "threshold") {
    ThresholdParams p;
    p.base.cluster_size = o.nodes;
    p.base.config = cfg;
    p.base.seed = o.seed;
    p.concurrent = o.victims;
    p.duration = msec(o.duration_ms);
    p.observe = sec(o.length_s);
    report(run_threshold(p));
  } else if (o.anomaly == "interval") {
    IntervalParams p;
    p.base.cluster_size = o.nodes;
    p.base.config = cfg;
    p.base.seed = o.seed;
    p.concurrent = o.victims;
    p.duration = msec(o.duration_ms);
    p.interval = msec(o.interval_ms);
    p.test_length = sec(o.length_s);
    report(run_interval(p));
  } else if (o.anomaly == "stress") {
    StressParams p;
    p.base.cluster_size = o.nodes;
    p.base.config = cfg;
    p.base.seed = o.seed;
    p.stressed = o.victims;
    p.test_length = sec(o.length_s);
    report(run_stress(p));
  } else if (o.anomaly == "none") {
    IntervalParams p;
    p.base.cluster_size = o.nodes;
    p.base.config = cfg;
    p.base.seed = o.seed;
    p.concurrent = 0;
    p.duration = msec(1000);
    p.interval = msec(1000);
    p.test_length = sec(o.length_s);
    report(run_interval(p));
  } else {
    std::fprintf(stderr, "unknown anomaly kind '%s'\n", o.anomaly.c_str());
    return 2;
  }
  return 0;
}
