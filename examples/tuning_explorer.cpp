// Explore the alpha/beta suspicion-timeout trade-off (paper §V-F4): lower
// alpha buys faster detection at the cost of more false positives. Prints
// detection latency and FP counts for a few tunings so an operator can pick
// a point on the curve. Each tuning runs the same two declarative scenarios
// (a threshold run for latency, a cycling run for false positives).
//
//   ./examples/tuning_explorer
#include <cstdio>

#include "harness/scenario.h"
#include "harness/table.h"

using namespace lifeguard;
using namespace lifeguard::harness;

int main() {
  std::printf(
      "Lifeguard suspicion-timeout tuning explorer\n"
      "Min = alpha*log10(n)*probe_interval, Max = beta*Min  (n = 64 here)\n\n");

  struct Point {
    double alpha, beta;
  };
  const Point points[] = {{2, 2}, {2, 6}, {4, 4}, {5, 6}};

  Table table({"alpha", "beta", "Median detect (s)", "99th detect (s)",
               "FP events", "Suspicion Min (s)", "Suspicion Max (s)"});

  for (const Point& pt : points) {
    swim::Config cfg = swim::Config::lifeguard();
    cfg.suspicion_alpha = pt.alpha;
    cfg.suspicion_beta = pt.beta;

    // Latency: one threshold scenario with long anomalies.
    Scenario lat_s;
    lat_s.name = "tuning-latency";
    lat_s.cluster_size = 64;
    lat_s.config = cfg;
    lat_s.seed = 9;
    lat_s.anomaly = AnomalyPlan::threshold(6, msec(32768));
    lat_s.run_length = sec(60);
    const RunResult lat = run(lat_s);
    Histogram h;
    for (double s : lat.first_detect) h.record(s);

    // False positives: one cycling scenario with aggressive flapping.
    Scenario fp_s;
    fp_s.name = "tuning-false-positives";
    fp_s.cluster_size = 64;
    fp_s.config = cfg;
    fp_s.seed = 9;
    fp_s.anomaly = AnomalyPlan::cycling(10, msec(16384), msec(4));
    fp_s.run_length = sec(120);
    const RunResult fp = run(fp_s);

    const Duration min_t =
        swim::suspicion_min(pt.alpha, 64, cfg.probe_interval);
    table.add_row({fmt_double(pt.alpha, 0), fmt_double(pt.beta, 0),
                   fmt_double(h.percentile(0.5), 2),
                   fmt_double(h.percentile(0.99), 2),
                   fmt_int(fp.fp_events), fmt_double(min_t.seconds(), 1),
                   fmt_double(min_t.scaled(pt.beta).seconds(), 1)});
    std::fprintf(stderr, "alpha=%.0f beta=%.0f done\n", pt.alpha, pt.beta);
  }
  table.print();
  std::printf(
      "\nReading the curve: alpha=2 halves detection latency but multiplies"
      "\nfalse positives; alpha=5, beta=6 is the paper's recommended point.\n");
  return 0;
}
