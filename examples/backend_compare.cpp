// The three-backend comparative experiment behind docs/membership.md: one
// fault timeline, three failure detectors — gossip-based swim, the
// coordinator-based central heartbeat detector, and the static control floor
// — run as a single paired campaign (Axis::backend derives identical seeds
// per repetition, so every backend faces the same workload byte for byte).
//
//   ./examples/backend_compare [--reps N] [--jobs N]
//                              [--json FILE] [--csv FILE]
//
// Prints a markdown results table (detection latency, false positives,
// message load per backend) suitable for pasting into docs. The run is
// deterministic: fixed base seed, jobs-invariant artifacts.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "harness/campaign.h"
#include "harness/report.h"
#include "harness/scenario.h"

using namespace lifeguard;
using namespace lifeguard::harness;

namespace {

/// The workload: the cataloged central-crash-detect fault timeline (16
/// nodes, 3 members blocked at +10 s for 20 s, full invariant suite) with
/// the membership axis swept over all three backends.
Campaign build(int reps, int jobs) {
  const Scenario* base =
      ScenarioRegistry::builtin().find("central-crash-detect");
  if (base == nullptr) {
    std::fprintf(stderr, "central-crash-detect not in the registry\n");
    std::exit(2);
  }
  Campaign c;
  c.name = "backend-compare";
  c.base = *base;
  c.base.name = "backend-compare";
  c.base.summary = "one fault timeline, three detectors";
  c.axes = {Axis::backend({"swim", "central", "static"})};
  c.repetitions = reps;
  c.jobs = jobs;
  c.base_seed = 1;
  return c;
}

void print_table(const CampaignResult& r) {
  std::printf(
      "| Backend | Trials | First detect p50 (s) | First detect max (s) | "
      "FP events / trial | Msgs / trial | Bytes / trial | Violations |\n");
  std::printf(
      "|---|---|---|---|---|---|---|---|\n");
  for (const PointStats& p : r.points) {
    if (p.first_detect.count() > 0) {
      std::printf("| `%s` | %d | %.2f | %.2f | %.1f | %.0f | %.0f | %d |\n",
                  p.labels.front().c_str(), p.trials,
                  p.first_detect.percentile(0.5), p.first_detect.max(),
                  p.fp.mean, p.msgs.mean, p.bytes.mean, p.violating_trials);
    } else {
      std::printf("| `%s` | %d | — | — | %.1f | %.0f | %.0f | %d |\n",
                  p.labels.front().c_str(), p.trials, p.fp.mean, p.msgs.mean,
                  p.bytes.mean, p.violating_trials);
    }
  }
  std::printf(
      "\nLatencies are measured from the post-quiesce timeline origin; the "
      "block lands at +10 s.\n");
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 5;
  int jobs = 4;
  std::string json_path, csv_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--reps") {
      reps = std::atoi(next());
    } else if (arg == "--jobs") {
      jobs = std::atoi(next());
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--csv") {
      csv_path = next();
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (reps < 1 || jobs < 1) {
    std::fprintf(stderr, "--reps and --jobs must be >= 1\n");
    return 2;
  }

  const Campaign c = build(reps, jobs);
  std::ofstream json_out, csv_out;
  std::vector<Reporter*> reporters;
  ProgressReporter progress(c.name);
  reporters.push_back(&progress);
  std::optional<JsonlReporter> jsonl;
  std::optional<CsvReporter> csv;
  if (!json_path.empty()) {
    json_out.open(json_path);
    jsonl.emplace(json_out);
    reporters.push_back(&*jsonl);
  }
  if (!csv_path.empty()) {
    csv_out.open(csv_path);
    csv.emplace(csv_out);
    reporters.push_back(&*csv);
  }

  const CampaignResult r = harness::run(c, reporters);
  print_table(r);
  return 0;
}
