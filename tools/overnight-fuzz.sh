#!/usr/bin/env bash
# Long-budget coverage-guided fuzzing of the fault-timeline space.
#
#   tools/overnight-fuzz.sh [BUILD_DIR] [TRIALS] [SEED]
#
# Runs the fuzzer (scenario_runner --fuzz; src/fuzz) with a large trial
# budget against the three membership backends — swim, central and swim
# with an aggressive suspicion cap — and collects everything under
# fuzz-out/<target>/: auto-shrunk reproducer scenarios (fuzz-*.json, each
# with a baselines.json entry), the coverage-extending corpus, and a
# coverage.json report. The whole run is deterministic for a given SEED at
# any --fuzz-jobs level, so a finding here is a finding everywhere.
#
# Exit status: 0 when no target found violations, 3 when at least one did
# (triage workflow in docs/fuzzing.md — replay a reproducer with
# `scenario_runner --scenario-file FILE --check`).
set -uo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
trials="${2:-20000}"
seed="${3:-1}"
runner="$build_dir/scenario_runner"

if [[ ! -x "$runner" ]]; then
  echo "error: $runner not built (cmake --build $build_dir --target scenario_runner)" >&2
  exit 2
fi

out_root="$repo_root/fuzz-out"
mkdir -p "$out_root"
found=0

# target-name  extra-flags...
run_target() {
  local name="$1"
  shift
  echo "=== fuzz target: $name ($trials trials, seed $seed) ==="
  "$runner" --fuzz "$trials" --fuzz-seed "$seed" \
            --fuzz-out "$out_root/$name" \
            --nodes 10 --length 45 "$@"
  local rc=$?
  if [[ $rc -eq 3 ]]; then
    found=1
  elif [[ $rc -ne 0 ]]; then
    echo "error: target $name exited $rc" >&2
    exit "$rc"
  fi
  echo
}

run_target swim
run_target central --membership central
# The paper's tuning dimension: a tight-but-legal suspicion cap makes the
# suspicion-bounds invariant sharp without planting a violation. (Set it
# below the protocol floor — e.g. 500 — to watch the whole find/shrink
# pipeline fire; see docs/fuzzing.md.)
run_target swim-tight-cap --suspicion-cap 30000

if [[ $found -eq 1 ]]; then
  echo "violations found — reproducers and baselines are under $out_root/"
  exit 3
fi
echo "no violations in this budget — corpus + coverage reports under $out_root/"
