#!/usr/bin/env bash
# Re-record the committed scenario files and their baseline metric bands.
#
#   tools/record-baselines.sh [BUILD_DIR] [--check]
#
# Re-exports scenarios/*.json from ScenarioRegistry::builtin() and re-runs
# the non-big registry tier to re-derive scenarios/baselines.json (band
# policy in docs/scenario-files.md). Run it after an intentional behavior
# change, review the diff, and commit it alongside the change. Both
# artifacts are deterministic — on an unchanged tree this script is a
# no-op, which is exactly what --check (the CI freshness gate) asserts.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
runner="$build_dir/scenario_runner"
check_mode=0
if [[ "${2:-}" == "--check" || "${1:-}" == "--check" ]]; then
  check_mode=1
  [[ "${1:-}" == "--check" ]] && runner="$repo_root/build/scenario_runner"
fi

if [[ ! -x "$runner" ]]; then
  echo "error: $runner not built (cmake --build $build_dir --target scenario_runner)" >&2
  exit 2
fi

target="$repo_root/scenarios"
out="$target"
if [[ "$check_mode" == 1 ]]; then
  out="$(mktemp -d)"
  trap 'rm -rf "$out"' EXIT
fi

"$runner" --export-scenarios "$out"
"$runner" --record-baselines "$out/baselines.json"
"$runner" --validate-scenarios "$out"

if [[ "$check_mode" == 1 ]]; then
  if ! diff -ur "$target" "$out"; then
    echo "" >&2
    echo "scenarios/ is stale — regenerate with tools/record-baselines.sh" >&2
    exit 1
  fi
  echo "scenarios/ is up to date"
else
  echo "wrote $target/"
fi
