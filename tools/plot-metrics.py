#!/usr/bin/env python3
"""Quick-look renderer and schema validator for telemetry artifacts.

Reads the JSONL artifacts scenario_runner --metrics-out writes (see
docs/observability.md): per-sample `series.jsonl` lines

    {"t": 0.5, "metric": "members.active", "id": 0, "node": -1, "value": 8}

or campaign `bands.jsonl` lines

    {"type": "series-band", "t": 0.5, "metric": "...", "id": 0, "node": -1,
     "count": 5, "mean": ..., "stddev": ..., "min": ..., "max": ...,
     "p50": ..., "p99": ...}

and renders one metric as an ASCII chart (default) or an SVG file. Band
files plot the mean with a min..max envelope. Standard library only.

Usage:
    tools/plot-metrics.py DIR-or-FILE [--metric lhm.max] [--node -1]
                          [--out chart.svg] [--list]
    tools/plot-metrics.py --validate DIR-or-FILE

--validate checks every line against the documented schema (field names,
types, id range, id<->name agreement with the catalog) and exits nonzero
on the first offence — CI runs this against freshly emitted artifacts.
"""

import argparse
import json
import os
import sys

# Mirror of src/obs/catalog.h — append-only, never renumber.
CATALOG = [
    "members.active",
    "members.suspect",
    "members.dead",
    "lhm.mean",
    "lhm.max",
    "probe.rtt.mean_us",
    "probe.nack.rate",
    "probe.fail.rate",
    "net.msgs.rate",
    "net.msgs.total",
    "net.bytes.total",
    "gossip.pending.mean",
    "gossip.pending.max",
    "sim.queue.depth",
    "sim.events.rate",
    "gossip.transmits.rate",
]

SERIES_FIELDS = {"t": (int, float), "metric": str, "id": int,
                 "node": int, "value": (int, float)}
BAND_FIELDS = {"type": str, "t": (int, float), "metric": str, "id": int,
               "node": int, "count": int, "mean": (int, float),
               "stddev": (int, float), "min": (int, float),
               "max": (int, float), "p50": (int, float),
               "p99": (int, float)}


def resolve_path(path):
    """Accept a file or a --metrics-out directory."""
    if os.path.isdir(path):
        for name in ("series.jsonl", "bands.jsonl"):
            candidate = os.path.join(path, name)
            if os.path.exists(candidate):
                return candidate
        sys.exit(f"error: {path} holds neither series.jsonl nor bands.jsonl")
    return path


def check_line(obj, lineno, path):
    is_band = obj.get("type") == "series-band"
    fields = BAND_FIELDS if is_band else SERIES_FIELDS
    for key, types in fields.items():
        if key not in obj:
            sys.exit(f"{path}:{lineno}: missing field {key!r}")
        if not isinstance(obj[key], types) or isinstance(obj[key], bool):
            sys.exit(f"{path}:{lineno}: field {key!r} has wrong type "
                     f"({type(obj[key]).__name__})")
    unknown = set(obj) - set(fields)
    if unknown:
        sys.exit(f"{path}:{lineno}: unknown fields {sorted(unknown)}")
    if not 0 <= obj["id"] < len(CATALOG):
        sys.exit(f"{path}:{lineno}: id {obj['id']} out of catalog range")
    if obj["metric"] != CATALOG[obj["id"]]:
        sys.exit(f"{path}:{lineno}: id {obj['id']} names "
                 f"{CATALOG[obj['id']]!r}, line says {obj['metric']!r}")
    if obj["node"] < -1:
        sys.exit(f"{path}:{lineno}: node {obj['node']} < -1")
    return is_band


def load(path):
    rows, bands = [], False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{lineno}: not JSON: {e}")
            bands = check_line(obj, lineno, path)
            rows.append(obj)
    if not rows:
        sys.exit(f"{path}: no samples")
    return rows, bands


def select(rows, metric, node):
    picked = [r for r in rows if r["metric"] == metric
              and (node is None or r["node"] == node)]
    if not picked:
        have = sorted({r["metric"] for r in rows})
        sys.exit(f"error: no samples for metric {metric!r}"
                 f" (have: {', '.join(have)})")
    return sorted(picked, key=lambda r: (r["t"], r["node"]))


def ascii_chart(points, metric, width=64, height=16):
    ts = [p[0] for p in points]
    vs = [p[1] for p in points]
    lo, hi = min(vs), max(vs)
    span = (hi - lo) or 1.0
    tspan = (ts[-1] - ts[0]) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for t, v in points:
        x = min(width - 1, int((t - ts[0]) / tspan * (width - 1)))
        y = min(height - 1, int((hi - v) / span * (height - 1)))
        grid[y][x] = "*"
    out = [f"{metric}  [{lo:g} .. {hi:g}]  t=[{ts[0]:g}s .. {ts[-1]:g}s]"]
    for i, row in enumerate(grid):
        label = hi if i == 0 else (lo if i == height - 1 else None)
        out.append(f"{label:>10.3g} |" if label is not None
                   else "           |", )
        out[-1] += "".join(row)
    out.append("           +" + "-" * width)
    return "\n".join(out)


def svg_chart(points, envelope, metric, path, w=640, h=320, pad=40):
    ts = [p[0] for p in points]
    vs = [p[1] for p in points]
    all_v = vs + [v for pair in envelope for v in pair[1:]] if envelope else vs
    lo, hi = min(all_v), max(all_v)
    span = (hi - lo) or 1.0
    tspan = (ts[-1] - ts[0]) or 1.0

    def sx(t):
        return pad + (t - ts[0]) / tspan * (w - 2 * pad)

    def sy(v):
        return h - pad - (v - lo) / span * (h - 2 * pad)

    parts = [f'<svg xmlns="http://www.w3.org/2000/svg" width="{w}" '
             f'height="{h}" viewBox="0 0 {w} {h}">',
             f'<rect width="{w}" height="{h}" fill="white"/>']
    if envelope:
        upper = [f"{sx(t):.1f},{sy(mx):.1f}" for t, _, mx in envelope]
        lower = [f"{sx(t):.1f},{sy(mn):.1f}" for t, mn, _ in reversed(envelope)]
        parts.append(f'<polygon points="{" ".join(upper + lower)}" '
                     f'fill="#c8dcf0" stroke="none"/>')
    line = " ".join(f"{sx(t):.1f},{sy(v):.1f}" for t, v in points)
    parts.append(f'<polyline points="{line}" fill="none" '
                 f'stroke="#1f5fa8" stroke-width="1.5"/>')
    parts.append(f'<text x="{pad}" y="20" font-family="monospace" '
                 f'font-size="13">{metric}  [{lo:g} .. {hi:g}]</text>')
    parts.append(f'<text x="{pad}" y="{h - 8}" font-family="monospace" '
                 f'font-size="11">t = {ts[0]:g}s .. {ts[-1]:g}s</text>')
    parts.append("</svg>")
    with open(path, "w", encoding="utf-8") as f:
        f.write("\n".join(parts) + "\n")
    print(f"wrote {path}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("path", help="series.jsonl, bands.jsonl, or a "
                                 "--metrics-out directory")
    ap.add_argument("--metric", default="lhm.max")
    ap.add_argument("--node", type=int, default=None,
                    help="filter to one node (-1 = cluster aggregate)")
    ap.add_argument("--out", help="write an SVG instead of ASCII")
    ap.add_argument("--list", action="store_true",
                    help="list available metrics and exit")
    ap.add_argument("--validate", action="store_true",
                    help="schema-check only, no rendering")
    args = ap.parse_args()

    path = resolve_path(args.path)
    rows, bands = load(path)
    if args.validate:
        kind = "band" if bands else "sample"
        print(f"{path}: {len(rows)} {kind} lines conform to the schema")
        return
    if args.list:
        for name in sorted({r["metric"] for r in rows}):
            nodes = sorted({r["node"] for r in rows if r["metric"] == name})
            print(f"{name}  nodes={nodes}")
        return

    picked = select(rows, args.metric, args.node)
    if bands:
        points = [(r["t"], r["mean"]) for r in picked]
        envelope = [(r["t"], r["min"], r["max"]) for r in picked]
    else:
        points = [(r["t"], r["value"]) for r in picked]
        envelope = None
    if args.out:
        svg_chart(points, envelope, args.metric, args.out)
    else:
        print(ascii_chart(points, args.metric))


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:  # e.g. piped into head
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
