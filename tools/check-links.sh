#!/usr/bin/env bash
# Markdown link checker for the repo's documentation.
#
#   tools/check-links.sh
#
# Validates every relative link target in README.md, DESIGN.md, ROADMAP.md
# and docs/*.md: the referenced file (or directory) must exist. External
# http(s) links and pure anchors are not fetched (CI must not depend on
# the network). Exits 1 listing every broken link.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

files=(README.md DESIGN.md ROADMAP.md)
while IFS= read -r f; do files+=("$f"); done < <(find docs -name '*.md' | sort)

broken=0
for f in "${files[@]}"; do
  [[ -f "$f" ]] || continue
  dir="$(dirname "$f")"
  # Extract inline markdown link targets: [text](target) — with fenced
  # code blocks stripped first (C++ lambdas look like links to grep).
  while IFS= read -r target; do
    [[ -z "$target" ]] && continue
    case "$target" in
      http://*|https://*|mailto:*) continue ;;  # external: not fetched
      '#'*) continue ;;                          # in-page anchor
      *' '*) continue ;;                         # not a path (code remnant)
    esac
    # Strip a trailing anchor from file.md#section
    path="${target%%#*}"
    [[ -z "$path" ]] && continue
    if [[ ! -e "$dir/$path" && ! -e "$path" ]]; then
      echo "$f: broken link -> $target"
      broken=1
    fi
  done < <(awk '/^```/{fence=!fence; next} !fence' "$f" |
           grep -oE '\]\(([^)]+)\)' | sed -E 's/^\]\(//; s/\)$//')
done

if [[ "$broken" == 1 ]]; then
  echo "" >&2
  echo "broken markdown links found" >&2
  exit 1
fi
echo "all markdown links resolve"
